//! Additional `real`-suite programs — analogues for part of the paper's
//! "(18 others)".

use crate::{Program, Suite};

/// `compress` — run-length encoding then a decode-length check. The
/// scan loop returns `Pair run rest` (join-relevant); the encoded output
/// list is allocated either way (ballast).
pub const COMPRESS: &str = "
def input : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int
        else Cons @Int ((i / 5) % 3) (go (i + 1))
    in go 1;

-- measure one run: (length, rest)
def run : Int -> List Int -> Pair Int (List Int) =
  \\(sym : Int) (xs : List Int) ->
    letrec go : Int -> List Int -> Pair Int (List Int) =
      \\(len : Int) (rest : List Int) ->
        case rest of {
          Nil -> MkPair @Int @(List Int) len rest;
          Cons c more ->
            if c == sym then go (len + 1) more
            else MkPair @Int @(List Int) len rest
        }
    in go 0 xs;

def encode : List Int -> List (Pair Int Int) =
  \\(xs0 : List Int) ->
    letrec go : List Int -> List (Pair Int Int) =
      \\(xs : List Int) ->
        case xs of {
          Nil -> Nil @(Pair Int Int);
          Cons c _ ->
            case run c xs of {
              MkPair len rest ->
                Cons @(Pair Int Int) (MkPair @Int @Int c len) (go rest)
            }
        }
    in go xs0;

def decodedLength : List (Pair Int Int) -> Int =
  \\(es : List (Pair Int Int)) ->
    letrec go : List (Pair Int Int) -> Int -> Int =
      \\(xs : List (Pair Int Int)) (acc : Int) ->
        case xs of {
          Nil -> acc;
          Cons p rest -> case p of { MkPair _ len -> go rest (acc + len) }
        }
    in go es 0;

def main : Int =
  let encoded : List (Pair Int Int) = encode (input 120) in
  decodedLength encoded;
";

/// `grep` — first-occurrence search for several needles over a haystack
/// list, with a recursive prefix matcher returning `Maybe Int` (index).
pub const GREP: &str = "
def haystack : Int -> List Int =
  \\(n : Int) ->
    letrec go : Int -> List Int =
      \\(i : Int) ->
        if i > n then Nil @Int
        else Cons @Int ((i * 11 + 5) % 6) (go (i + 1))
    in go 1;

def prefix : List Int -> List Int -> Bool =
  \\(pat : List Int) (xs : List Int) ->
    letrec go : List Int -> List Int -> Bool =
      \\(p : List Int) (ys : List Int) ->
        case p of {
          Nil -> True;
          Cons a pr ->
            case ys of {
              Nil -> False;
              Cons y yr -> if y == a then go pr yr else False
            }
        }
    in go pat xs;

def findAt : List Int -> List Int -> Maybe Int =
  \\(pat : List Int) (xs0 : List Int) ->
    letrec go : List Int -> Int -> Maybe Int =
      \\(xs : List Int) (i : Int) ->
        case xs of {
          Nil -> Nothing @Int;
          Cons _ rest ->
            if prefix pat xs then Just @Int i else go rest (i + 1)
        }
    in go xs0 0;

def pat2 : Int -> Int -> List Int =
  \\(a : Int) (b : Int) -> Cons @Int a (Cons @Int b (Nil @Int));

def main : Int =
  let hay : List Int = haystack 140 in
  let hit1 : Int = case findAt (pat2 0 4) hay of { Nothing -> 0 - 1; Just i -> i } in
  let hit2 : Int = case findAt (pat2 3 2) hay of { Nothing -> 0 - 1; Just i -> i } in
  let hit3 : Int = case findAt (pat2 5 5) hay of { Nothing -> 0 - 1; Just i -> i } in
  hit1 + 1000 * hit2 + 1000000 * hit3;
";

/// `infer` — toy type inference over an expression tree: the checker
/// returns `Maybe Int` (a type code) and threads failure through nested
/// cases.
pub const INFER: &str = "
data E = ELit Int | EBool Bool | EAdd E E | EIf E E E;

def mkE : Int -> E =
  \\(d : Int) ->
    letrec go : Int -> Int -> E =
      \\(depth : Int) (seed : Int) ->
        if depth <= 0 then
          (if seed % 2 == 0 then ELit (seed % 9) else EBool (seed % 3 == 0))
        else if seed % 3 == 0 then
          EAdd (go (depth - 1) (seed * 5 + 1)) (go (depth - 1) (seed * 7 + 2))
        else
          EIf (go (depth - 1) (seed * 3 + 1))
              (go (depth - 1) (seed * 5 + 2))
              (go (depth - 1) (seed * 7 + 3))
    in go d 1;

-- type codes: 1 = Int, 2 = Bool
def infer : E -> Maybe Int =
  \\(e0 : E) ->
    letrec go : E -> Maybe Int =
      \\(e : E) ->
        case e of {
          ELit _ -> Just @Int 1;
          EBool _ -> Just @Int 2;
          EAdd a b ->
            case go a of {
              Nothing -> Nothing @Int;
              Just ta ->
                if ta == 1 then
                  case go b of {
                    Nothing -> Nothing @Int;
                    Just tb -> if tb == 1 then Just @Int 1 else Nothing @Int
                  }
                else Nothing @Int
            };
          EIf c t f ->
            case go c of {
              Nothing -> Nothing @Int;
              Just tc ->
                if tc == 2 then
                  case go t of {
                    Nothing -> Nothing @Int;
                    Just tt ->
                      case go f of {
                        Nothing -> Nothing @Int;
                        Just tf -> if tt == tf then Just @Int tt else Nothing @Int
                      }
                  }
                else Nothing @Int
            }
        }
    in go e0;

def score : Int -> Int =
  \\(seedBase : Int) ->
    letrec go : Int -> Int -> Int =
      \\(i : Int) (acc : Int) ->
        if i > 12 then acc
        else
          case infer (mkE (2 + i % 3)) of {
            Nothing -> go (i + 1) acc;
            Just t -> go (i + 1) (acc + t)
          }
    in go seedBase 0;

def main : Int = score 1;
";

/// Additional real programs.
pub fn programs() -> Vec<Program> {
    vec![
        Program {
            name: "compress",
            suite: Suite::Real,
            source: COMPRESS,
            expected: Some(120),
        },
        Program {
            name: "grep",
            suite: Suite::Real,
            source: GREP,
            expected: None,
        },
        Program {
            name: "infer",
            suite: Suite::Real,
            source: INFER,
            expected: None,
        },
    ]
}
