//! The System F_J type checker — GHC's "Core Lint" for our calculus.
//!
//! This is a direct transliteration of Fig. 2 of the paper. The checker is
//! run after every optimizer pass in tests (paper Sec. 7: "Core Lint …
//! forensically identified several existing Core-to-Core passes that were
//! destroying join points"); any pass that breaks the Δ discipline — e.g.
//! by letting a jump escape into a lambda or an argument — fails here.

use crate::env::{Delta, Gamma, JoinSig};
use fj_ast::{AltCon, DataEnv, Expr, Ident, JoinBind, LetBind, Name, PrimOp, Type};
use std::collections::HashSet;
use std::fmt;

/// Why a term failed to lint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintErrorKind {
    /// A term variable is not in Γ.
    UnboundVar(Name),
    /// A type variable is not in scope.
    UnboundTyVar(Name),
    /// A label is not in Δ — either truly unbound, or a jump in a position
    /// where Δ was reset (the paper's "jumps are not side effects" rule).
    UnboundLabel(Name),
    /// Expected one type, found another.
    Mismatch {
        /// What the context required.
        expected: Type,
        /// What the term actually had.
        found: Type,
        /// Where (human-readable).
        context: &'static str,
    },
    /// A non-function was applied.
    NotAFunction(Type),
    /// A non-∀ was type-applied.
    NotPolymorphic(Type),
    /// `case` scrutinee with constructor alternatives isn't a datatype.
    NotADatatype(Type),
    /// Constructor alternative doesn't belong to the scrutinee's datatype.
    WrongDatatype {
        /// The constructor in the alternative.
        con: Ident,
        /// The scrutinee's type constructor.
        scrutinee: Ident,
    },
    /// A constructor or jump applied to the wrong number of arguments.
    Arity {
        /// What was being applied.
        what: String,
        /// Expected argument count.
        expected: usize,
        /// Actual argument count.
        got: usize,
    },
    /// Case alternatives are missing and there is no default.
    NonExhaustiveCase,
    /// A case expression with no alternatives at all.
    EmptyCase,
    /// Duplicate alternative for the same constructor/literal.
    DuplicateAlt,
    /// Alternative field binder count doesn't match the constructor.
    FieldCount {
        /// The constructor.
        con: Ident,
        /// Declared field count.
        expected: usize,
        /// Binder count in the alternative.
        got: usize,
    },
    /// A datatype error (unknown constructor, arity, …).
    Data(fj_ast::DataEnvError),
    /// Primop applied to the wrong number of arguments.
    PrimArity(PrimOp, usize),
    /// A join point's RHS type differs from the join body's type
    /// (rule JBIND's crucial premise).
    JoinResultMismatch {
        /// The label.
        label: Name,
        /// The body's type (what the RHS must match).
        body_ty: Type,
        /// The RHS's type.
        rhs_ty: Type,
    },
}

impl fmt::Display for LintErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintErrorKind::UnboundVar(x) => write!(f, "unbound variable {x}"),
            LintErrorKind::UnboundTyVar(a) => write!(f, "unbound type variable {a}"),
            LintErrorKind::UnboundLabel(j) => {
                write!(
                    f,
                    "label {j} not in scope (jump outside its join's tail context?)"
                )
            }
            LintErrorKind::Mismatch {
                expected,
                found,
                context,
            } => {
                write!(
                    f,
                    "type mismatch in {context}: expected {expected}, found {found}"
                )
            }
            LintErrorKind::NotAFunction(t) => write!(f, "applied non-function of type {t}"),
            LintErrorKind::NotPolymorphic(t) => {
                write!(f, "type-applied non-polymorphic type {t}")
            }
            LintErrorKind::NotADatatype(t) => write!(f, "case scrutinee has type {t}"),
            LintErrorKind::WrongDatatype { con, scrutinee } => {
                write!(
                    f,
                    "constructor {con} does not belong to datatype {scrutinee}"
                )
            }
            LintErrorKind::Arity {
                what,
                expected,
                got,
            } => {
                write!(f, "{what} expects {expected} arguments, got {got}")
            }
            LintErrorKind::NonExhaustiveCase => write!(f, "non-exhaustive case alternatives"),
            LintErrorKind::EmptyCase => write!(f, "case with no alternatives"),
            LintErrorKind::DuplicateAlt => write!(f, "duplicate case alternative"),
            LintErrorKind::FieldCount { con, expected, got } => {
                write!(
                    f,
                    "constructor {con} has {expected} fields, pattern binds {got}"
                )
            }
            LintErrorKind::Data(e) => write!(f, "{e}"),
            LintErrorKind::PrimArity(op, got) => {
                write!(f, "primop {op} expects 2 arguments, got {got}")
            }
            LintErrorKind::JoinResultMismatch {
                label,
                body_ty,
                rhs_ty,
            } => write!(
                f,
                "join point {label} returns {rhs_ty} but the join body returns {body_ty}"
            ),
        }
    }
}

/// A lint failure, with a breadcrumb trail to the offending subterm.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintError {
    /// What went wrong.
    pub kind: LintErrorKind,
    /// Path from the root to the error site (outermost first). Binding
    /// steps name the binder they pass through (`let s_12 rhs`,
    /// `lambda x_3 body`, `case alt Cons`, …) so a rollback reason in
    /// `fj report` points at the actual culprit.
    pub path: Vec<String>,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if !self.path.is_empty() {
            write!(f, " (at {})", self.path.join(" > "))?;
        }
        Ok(())
    }
}

impl std::error::Error for LintError {}

impl From<fj_ast::DataEnvError> for LintError {
    fn from(e: fj_ast::DataEnvError) -> Self {
        LintError {
            kind: LintErrorKind::Data(e),
            path: Vec::new(),
        }
    }
}

fn err(kind: LintErrorKind) -> LintError {
    LintError {
        kind,
        path: Vec::new(),
    }
}

fn at(label: impl Into<String>, r: Result<Type, LintError>) -> Result<Type, LintError> {
    r.map_err(|mut e| {
        e.path.insert(0, label.into());
        e
    })
}

/// Type-check a closed term against a datatype environment.
///
/// # Errors
///
/// Returns the first [`LintError`] encountered, with a path to the site.
pub fn lint(e: &Expr, data_env: &DataEnv) -> Result<Type, LintError> {
    lint_open(e, data_env, &Gamma::new())
}

/// Type-check a term with free variables described by `gamma`.
///
/// # Errors
///
/// Returns the first [`LintError`] encountered.
pub fn lint_open(e: &Expr, data_env: &DataEnv, gamma: &Gamma) -> Result<Type, LintError> {
    let checker = Checker {
        data_env,
        strict: true,
    };
    checker.infer(e, gamma, &Delta::empty())
}

/// Compute the type of a term that is *assumed* well-typed, leniently:
/// unlike [`lint_open`], jumps to labels bound outside the fragment are
/// allowed (a jump's type is its annotation regardless), free type
/// variables in annotations are accepted, and exhaustiveness is not
/// enforced. The optimizer uses this to type subterms mid-rewrite.
///
/// # Errors
///
/// Returns a [`LintError`] if the fragment is structurally ill-typed
/// (e.g. applying a non-function).
pub fn type_of(e: &Expr, data_env: &DataEnv, gamma: &Gamma) -> Result<Type, LintError> {
    let checker = Checker {
        data_env,
        strict: false,
    };
    checker.infer(e, gamma, &Delta::empty())
}

struct Checker<'a> {
    data_env: &'a DataEnv,
    strict: bool,
}

impl Checker<'_> {
    /// Check that a type is well-formed under Γ: free type variables in
    /// scope, datatype applications saturated.
    fn wf_type(&self, t: &Type, gamma: &Gamma) -> Result<(), LintError> {
        if !self.strict {
            return Ok(());
        }
        match t {
            Type::Var(a) => {
                if gamma.has_tyvar(a) {
                    Ok(())
                } else {
                    Err(err(LintErrorKind::UnboundTyVar(a.clone())))
                }
            }
            Type::Con(tc, args) => {
                let dt = self.data_env.datatype(tc)?;
                if dt.ty_vars.len() != args.len() {
                    return Err(err(LintErrorKind::Arity {
                        what: format!("type constructor {tc}"),
                        expected: dt.ty_vars.len(),
                        got: args.len(),
                    }));
                }
                for a in args {
                    self.wf_type(a, gamma)?;
                }
                Ok(())
            }
            Type::Fun(a, b) => {
                self.wf_type(a, gamma)?;
                self.wf_type(b, gamma)
            }
            Type::Forall(a, body) => {
                let mut g = gamma.clone();
                g.bind_tyvar(a.clone());
                self.wf_type(body, &g)
            }
            Type::Int => Ok(()),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn infer(&self, e: &Expr, gamma: &Gamma, delta: &Delta) -> Result<Type, LintError> {
        match e {
            Expr::Var(x) => gamma
                .var(x)
                .cloned()
                .ok_or_else(|| err(LintErrorKind::UnboundVar(x.clone()))),
            Expr::Lit(_) => Ok(Type::Int),
            Expr::Prim(op, args) => {
                if args.len() != op.arity() {
                    return Err(err(LintErrorKind::PrimArity(*op, args.len())));
                }
                for a in args {
                    // Δ reset: primop operands are strict argument positions.
                    let t = at("primop operand", self.infer(a, gamma, &Delta::empty()))?;
                    if t != Type::Int {
                        return Err(err(LintErrorKind::Mismatch {
                            expected: Type::Int,
                            found: t,
                            context: "primop operand",
                        }));
                    }
                }
                Ok(op.result_type())
            }
            Expr::Lam(b, body) => {
                self.wf_type(&b.ty, gamma)?;
                let mut g = gamma.clone();
                g.bind_var(b.name.clone(), b.ty.clone());
                // Δ reset: a lambda may be called anywhere, so its body
                // cannot jump to enclosing join points.
                let body_ty = at(
                    format!("lambda {} body", b.name),
                    self.infer(body, &g, &Delta::empty()),
                )?;
                Ok(Type::fun(b.ty.clone(), body_ty))
            }
            Expr::TyLam(a, body) => {
                let mut g = gamma.clone();
                g.bind_tyvar(a.clone());
                let body_ty = at(
                    format!("type-lambda {a} body"),
                    self.infer(body, &g, &Delta::empty()),
                )?;
                Ok(Type::forall(a.clone(), body_ty))
            }
            Expr::App(f, x) => {
                // Δ propagates into the *function* part (evaluation context)
                // but is reset in the argument (rule APP).
                let f_ty = at("function", self.infer(f, gamma, delta))?;
                let x_ty = at("argument", self.infer(x, gamma, &Delta::empty()))?;
                match f_ty {
                    Type::Fun(a, b) => {
                        if a.alpha_eq(&x_ty) {
                            Ok(*b)
                        } else {
                            Err(err(LintErrorKind::Mismatch {
                                expected: *a,
                                found: x_ty,
                                context: "application argument",
                            }))
                        }
                    }
                    other => Err(err(LintErrorKind::NotAFunction(other))),
                }
            }
            Expr::TyApp(f, phi) => {
                self.wf_type(phi, gamma)?;
                let f_ty = at("type application head", self.infer(f, gamma, delta))?;
                match f_ty {
                    Type::Forall(a, body) => Ok(body.subst1(&a, phi)),
                    other => Err(err(LintErrorKind::NotPolymorphic(other))),
                }
            }
            Expr::Con(c, tys, args) => {
                for t in tys {
                    self.wf_type(t, gamma)?;
                }
                let (fields, result) = self.data_env.instantiate(c, tys)?;
                if fields.len() != args.len() {
                    return Err(err(LintErrorKind::Arity {
                        what: format!("constructor {c}"),
                        expected: fields.len(),
                        got: args.len(),
                    }));
                }
                for (field_ty, arg) in fields.iter().zip(args) {
                    // Δ reset: constructor arguments are stored, not run.
                    let t = at("constructor field", self.infer(arg, gamma, &Delta::empty()))?;
                    if !t.alpha_eq(field_ty) {
                        return Err(err(LintErrorKind::Mismatch {
                            expected: field_ty.clone(),
                            found: t,
                            context: "constructor field",
                        }));
                    }
                }
                Ok(result)
            }
            Expr::Case(scrut, alts) => {
                // Δ propagates into the scrutinee (evaluation context) AND
                // the branches (tail context).
                let scrut_ty = at("case scrutinee", self.infer(scrut, gamma, delta))?;
                self.check_alts(&scrut_ty, alts, gamma, delta)
            }
            Expr::Let(bind, body) => {
                match bind {
                    LetBind::NonRec(b, rhs) => {
                        self.wf_type(&b.ty, gamma)?;
                        // Δ reset in the RHS of a value binding.
                        let rhs_ty = at(
                            format!("let {} rhs", b.name),
                            self.infer(rhs, gamma, &Delta::empty()),
                        )?;
                        if !rhs_ty.alpha_eq(&b.ty) {
                            return Err(err(LintErrorKind::Mismatch {
                                expected: b.ty.clone(),
                                found: rhs_ty,
                                context: "let binding",
                            }));
                        }
                        let mut g = gamma.clone();
                        g.bind_var(b.name.clone(), b.ty.clone());
                        at(format!("let {} body", b.name), self.infer(body, &g, delta))
                    }
                    LetBind::Rec(binds) => {
                        let mut g = gamma.clone();
                        for (b, _) in binds {
                            self.wf_type(&b.ty, gamma)?;
                            g.bind_var(b.name.clone(), b.ty.clone());
                        }
                        for (b, rhs) in binds {
                            let rhs_ty = at(
                                format!("letrec {} rhs", b.name),
                                self.infer(rhs, &g, &Delta::empty()),
                            )?;
                            if !rhs_ty.alpha_eq(&b.ty) {
                                return Err(err(LintErrorKind::Mismatch {
                                    expected: b.ty.clone(),
                                    found: rhs_ty,
                                    context: "letrec binding",
                                }));
                            }
                        }
                        at("letrec body", self.infer(body, &g, delta))
                    }
                }
            }
            Expr::Join(jb, body) => self.check_join(jb, body, gamma, delta),
            Expr::Jump(j, tys, args, res_ty) => {
                self.wf_type(res_ty, gamma)?;
                let Some(sig) = delta.get(j).cloned() else {
                    if self.strict {
                        return Err(err(LintErrorKind::UnboundLabel(j.clone())));
                    }
                    // Lenient mode: out-of-fragment label; still type the
                    // arguments for internal consistency, then trust the
                    // annotation.
                    for arg in args {
                        at("jump argument", self.infer(arg, gamma, &Delta::empty()))?;
                    }
                    return Ok(res_ty.clone());
                };
                if sig.ty_params.len() != tys.len() {
                    return Err(err(LintErrorKind::Arity {
                        what: format!("jump to {j} (type arguments)"),
                        expected: sig.ty_params.len(),
                        got: tys.len(),
                    }));
                }
                if sig.param_tys.len() != args.len() {
                    return Err(err(LintErrorKind::Arity {
                        what: format!("jump to {j}"),
                        expected: sig.param_tys.len(),
                        got: args.len(),
                    }));
                }
                for t in tys {
                    self.wf_type(t, gamma)?;
                }
                let inst: fj_ast::FxHashMap<Name, Type> = sig
                    .ty_params
                    .iter()
                    .cloned()
                    .zip(tys.iter().cloned())
                    .collect();
                for (pt, arg) in sig.param_tys.iter().zip(args) {
                    let expected = pt.subst(&inst);
                    // Δ reset: jump arguments are argument positions.
                    let t = at("jump argument", self.infer(arg, gamma, &Delta::empty()))?;
                    if !t.alpha_eq(&expected) {
                        return Err(err(LintErrorKind::Mismatch {
                            expected,
                            found: t,
                            context: "jump argument",
                        }));
                    }
                }
                // A jump has whatever type its annotation claims (rule JUMP);
                // JBIND is what pins down what join points actually return.
                Ok(res_ty.clone())
            }
        }
    }

    fn check_join(
        &self,
        jb: &JoinBind,
        body: &Expr,
        gamma: &Gamma,
        delta: &Delta,
    ) -> Result<Type, LintError> {
        let mut delta_body = delta.clone();
        for d in jb.defs() {
            delta_body.bind(
                d.name.clone(),
                JoinSig {
                    ty_params: d.ty_params.clone(),
                    param_tys: d.params.iter().map(|p| p.ty.clone()).collect(),
                },
            );
        }
        // Non-recursive join RHSs see the *outer* Δ (they are tail contexts
        // of enclosing joins); recursive ones also see the group (RJBIND).
        let delta_rhs = if jb.is_rec() { &delta_body } else { delta };
        let body_ty = at("join body", self.infer(body, gamma, &delta_body))?;
        for d in jb.defs() {
            let mut g = gamma.clone();
            for a in &d.ty_params {
                g.bind_tyvar(a.clone());
            }
            for p in &d.params {
                self.wf_type(&p.ty, &g)?;
                g.bind_var(p.name.clone(), p.ty.clone());
            }
            let rhs_ty = at(
                format!("join {} rhs", d.name),
                self.infer(&d.body, &g, delta_rhs),
            )?;
            if !rhs_ty.alpha_eq(&body_ty) {
                return Err(err(LintErrorKind::JoinResultMismatch {
                    label: d.name.clone(),
                    body_ty,
                    rhs_ty,
                }));
            }
        }
        Ok(body_ty)
    }

    fn check_alts(
        &self,
        scrut_ty: &Type,
        alts: &[fj_ast::Alt],
        gamma: &Gamma,
        delta: &Delta,
    ) -> Result<Type, LintError> {
        if alts.is_empty() {
            return Err(err(LintErrorKind::EmptyCase));
        }
        let mut result_ty: Option<Type> = None;
        let mut seen_cons: HashSet<Ident> = HashSet::new();
        let mut seen_lits: HashSet<i64> = HashSet::new();
        let mut has_default = false;

        for alt in alts {
            let mut g = gamma.clone();
            match &alt.con {
                AltCon::Default => {
                    if has_default {
                        return Err(err(LintErrorKind::DuplicateAlt));
                    }
                    has_default = true;
                    if !alt.binders.is_empty() {
                        return Err(err(LintErrorKind::FieldCount {
                            con: Ident::new("_"),
                            expected: 0,
                            got: alt.binders.len(),
                        }));
                    }
                }
                AltCon::Lit(n) => {
                    if *scrut_ty != Type::Int {
                        return Err(err(LintErrorKind::Mismatch {
                            expected: Type::Int,
                            found: scrut_ty.clone(),
                            context: "literal case scrutinee",
                        }));
                    }
                    if !seen_lits.insert(*n) {
                        return Err(err(LintErrorKind::DuplicateAlt));
                    }
                    if !alt.binders.is_empty() {
                        return Err(err(LintErrorKind::FieldCount {
                            con: Ident::new("literal"),
                            expected: 0,
                            got: alt.binders.len(),
                        }));
                    }
                }
                AltCon::Con(c) => {
                    let Type::Con(tc, ty_args) = scrut_ty else {
                        return Err(err(LintErrorKind::NotADatatype(scrut_ty.clone())));
                    };
                    let owner = self.data_env.owner_of(c)?;
                    if &owner.name != tc {
                        return Err(err(LintErrorKind::WrongDatatype {
                            con: c.clone(),
                            scrutinee: tc.clone(),
                        }));
                    }
                    if !seen_cons.insert(c.clone()) {
                        return Err(err(LintErrorKind::DuplicateAlt));
                    }
                    let (fields, _) = self.data_env.instantiate(c, ty_args)?;
                    if fields.len() != alt.binders.len() {
                        return Err(err(LintErrorKind::FieldCount {
                            con: c.clone(),
                            expected: fields.len(),
                            got: alt.binders.len(),
                        }));
                    }
                    for (field_ty, b) in fields.iter().zip(&alt.binders) {
                        if !b.ty.alpha_eq(field_ty) {
                            return Err(err(LintErrorKind::Mismatch {
                                expected: field_ty.clone(),
                                found: b.ty.clone(),
                                context: "case field binder",
                            }));
                        }
                        g.bind_var(b.name.clone(), b.ty.clone());
                    }
                }
            }
            // Δ propagates into branches: they are tail contexts.
            let alt_label = match &alt.con {
                AltCon::Con(c) => format!("case alt {c}"),
                AltCon::Lit(n) => format!("case alt {n}"),
                AltCon::Default => "case alt _".to_string(),
            };
            let rhs_ty = at(alt_label, self.infer(&alt.rhs, &g, delta))?;
            match &result_ty {
                None => result_ty = Some(rhs_ty),
                Some(t) => {
                    if !t.alpha_eq(&rhs_ty) {
                        return Err(err(LintErrorKind::Mismatch {
                            expected: t.clone(),
                            found: rhs_ty,
                            context: "case alternatives",
                        }));
                    }
                }
            }
        }

        // Exhaustiveness.
        if self.strict && !has_default {
            match scrut_ty {
                Type::Con(tc, _) => {
                    let dt = self.data_env.datatype(tc)?;
                    if seen_cons.len() != dt.ctors.len() {
                        return Err(err(LintErrorKind::NonExhaustiveCase));
                    }
                }
                Type::Int => return Err(err(LintErrorKind::NonExhaustiveCase)),
                _ => return Err(err(LintErrorKind::NotADatatype(scrut_ty.clone()))),
            }
        }

        Ok(result_ty.expect("alts nonempty"))
    }
}
