//! # fj-check — the System F_J type system (Fig. 2)
//!
//! The paper's typing judgement `Γ; Δ ⊢ e : τ` carries two environments:
//! Γ for ordinary (term and type) variables and Δ for join-point labels.
//! Δ is **reset to ε** in every premise whose runtime evaluation context is
//! not statically known — function arguments, lambda bodies, constructor
//! fields, `let` right-hand sides — which is exactly what makes "adjust the
//! stack and jump" a sound compilation strategy for jumps.
//!
//! The crate plays the role of GHC's *Core Lint* (paper Sec. 7): it is run
//! between optimizer passes in this repository's test suite, so a pass that
//! destroys a join point (the failure mode motivating the whole paper)
//! fails loudly instead of silently de-optimizing.
//!
//! ## Example
//!
//! ```
//! use fj_ast::{DataEnv, Dsl, Expr, JoinDef, PrimOp, Type};
//! use fj_check::lint;
//!
//! let mut dsl = Dsl::new();
//! let j = dsl.name("j");
//! let x = dsl.binder("x", Type::Int);
//! let body = Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1));
//! let term = Expr::join1(
//!     JoinDef { name: j.clone(), ty_params: vec![], params: vec![x], body },
//!     Expr::jump(&j, vec![], vec![Expr::Lit(41)], Type::Int),
//! );
//! let ty = lint(&term, &dsl.data_env)?;
//! assert_eq!(ty, Type::Int);
//! # Ok::<(), fj_check::LintError>(())
//! ```

#![warn(missing_docs)]

mod env;
mod lint;

pub use env::{Delta, Gamma, JoinSig};
pub use lint::{lint, lint_open, type_of, LintError, LintErrorKind};

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{Alt, AltCon, Binder, DataEnv, Dsl, Expr, Ident, JoinDef, PrimOp, Type};

    fn ok(e: &Expr, env: &DataEnv) -> Type {
        match lint(e, env) {
            Ok(t) => t,
            Err(err) => panic!("expected well-typed, got: {err}\nterm:\n{e}"),
        }
    }

    fn bad(e: &Expr, env: &DataEnv) -> LintError {
        match lint(e, env) {
            Ok(t) => panic!("expected lint failure, got type {t}\nterm:\n{e}"),
            Err(err) => err,
        }
    }

    #[test]
    fn literals_and_prims() {
        let d = Dsl::new();
        assert_eq!(ok(&Expr::Lit(3), &d.data_env), Type::Int);
        let e = Expr::prim2(PrimOp::Lt, Expr::Lit(1), Expr::Lit(2));
        assert_eq!(ok(&e, &d.data_env), Type::bool());
    }

    #[test]
    fn lambda_and_application() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let f = Expr::lam(x.clone(), Expr::var(&x.name));
        assert_eq!(ok(&f, &d.data_env), Type::fun(Type::Int, Type::Int));
        let app = Expr::app(f, Expr::Lit(1));
        assert_eq!(ok(&app, &d.data_env), Type::Int);
    }

    #[test]
    fn wrong_argument_type_rejected() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let f = Expr::lam(x, Expr::Lit(0));
        let app = Expr::app(f, Expr::bool(true));
        let e = bad(&app, &d.data_env);
        assert!(matches!(e.kind, LintErrorKind::Mismatch { .. }));
    }

    #[test]
    fn polymorphic_identity() {
        let mut d = Dsl::new();
        let a = d.name("a");
        let x = d.binder("x", Type::Var(a.clone()));
        let id = Expr::ty_lam(a.clone(), Expr::lam(x.clone(), Expr::var(&x.name)));
        let t = ok(&id, &d.data_env);
        assert!(t.alpha_eq(&Type::forall(
            a.clone(),
            Type::fun(Type::Var(a.clone()), Type::Var(a))
        )));
        let inst = Expr::app(Expr::ty_app(id, Type::Int), Expr::Lit(5));
        assert_eq!(ok(&inst, &d.data_env), Type::Int);
    }

    #[test]
    fn constructors_and_case() {
        let mut d = Dsl::new();
        let scrut = d.just(Type::Int, Expr::Lit(4));
        let e = d.case_maybe(Type::Int, scrut, Expr::Lit(0), |_, x| Expr::var(x));
        assert_eq!(ok(&e, &d.data_env), Type::Int);
    }

    #[test]
    fn non_exhaustive_case_rejected() {
        let d = Dsl::new();
        let e = Expr::case(
            Expr::bool(true),
            vec![Alt::simple(AltCon::Con(Ident::new("True")), Expr::Lit(1))],
        );
        let err = bad(&e, &d.data_env);
        assert_eq!(err.kind, LintErrorKind::NonExhaustiveCase);
    }

    #[test]
    fn default_makes_exhaustive() {
        let d = Dsl::new();
        let e = Expr::case(
            Expr::bool(true),
            vec![
                Alt::simple(AltCon::Con(Ident::new("True")), Expr::Lit(1)),
                Alt::simple(AltCon::Default, Expr::Lit(0)),
            ],
        );
        assert_eq!(ok(&e, &d.data_env), Type::Int);
    }

    #[test]
    fn literal_case_needs_default() {
        let d = Dsl::new();
        let no_default = Expr::case(
            Expr::Lit(1),
            vec![Alt::simple(AltCon::Lit(1), Expr::Lit(10))],
        );
        assert_eq!(
            bad(&no_default, &d.data_env).kind,
            LintErrorKind::NonExhaustiveCase
        );
        let with_default = Expr::case(
            Expr::Lit(1),
            vec![
                Alt::simple(AltCon::Lit(1), Expr::Lit(10)),
                Alt::simple(AltCon::Default, Expr::Lit(0)),
            ],
        );
        assert_eq!(ok(&with_default, &d.data_env), Type::Int);
    }

    /// The basic well-typed join: `join j x = x + 1 in jump j 41 Int`.
    #[test]
    fn simple_join_and_jump() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x.clone()],
                body: Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
            },
            Expr::jump(&j, vec![], vec![Expr::Lit(41)], Type::Int),
        );
        assert_eq!(ok(&e, &d.data_env), Type::Int);
    }

    /// Paper Sec. 3: `join j x = RHS in f (jump j True Int)` is ILL-typed —
    /// the jump sits in an argument position where Δ has been reset.
    #[test]
    fn jump_in_argument_position_rejected() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let f = d.binder("f", Type::fun(Type::Int, Type::Int));
        let x = d.binder("x", Type::bool());
        let join_body = Expr::app(
            Expr::var(&f.name),
            Expr::jump(&j, vec![], vec![Expr::bool(true)], Type::Int),
        );
        let e = Expr::lam(
            f,
            Expr::join1(
                JoinDef {
                    name: j.clone(),
                    ty_params: vec![],
                    params: vec![x],
                    body: Expr::Lit(0),
                },
                join_body,
            ),
        );
        let err = bad(&e, &d.data_env);
        assert_eq!(err.kind, LintErrorKind::UnboundLabel(j));
    }

    /// Paper Sec. 3: the function part of an application KEEPS Δ, so
    /// `(jump j True C2C) 'x'` is well-typed inside the join's body.
    #[test]
    fn jump_in_function_position_accepted() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::bool());
        // join j (x:Bool) = 0 in (jump j True (Int -> Int)) 7  : Int
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x],
                body: Expr::Lit(0),
            },
            Expr::app(
                Expr::jump(
                    &j,
                    vec![],
                    vec![Expr::bool(true)],
                    Type::fun(Type::Int, Type::Int),
                ),
                Expr::Lit(7),
            ),
        );
        // The jump annotation claims Int -> Int; applying to 7 gives Int,
        // matching the join RHS type Int.
        assert_eq!(ok(&e, &d.data_env), Type::Int);
    }

    /// Paper Sec. 3 "Gotcha!": a join whose RHS type differs from the body
    /// type is rejected by JBIND.
    #[test]
    fn join_result_mismatch_rejected() {
        let mut d = Dsl::new();
        let j = d.name("j");
        // join j = True in jump-free body of type Int
        let e = Expr::join1(
            JoinDef {
                name: j,
                ty_params: vec![],
                params: vec![],
                body: Expr::bool(true),
            },
            Expr::Lit(4),
        );
        let err = bad(&e, &d.data_env);
        assert!(matches!(err.kind, LintErrorKind::JoinResultMismatch { .. }));
    }

    /// The callcc encoding (paper Sec. 9) must NOT type: a label free under
    /// a lambda.
    #[test]
    fn jump_under_lambda_rejected() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        let y = d.binder("y", Type::Int);
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x.clone()],
                body: Expr::var(&x.name),
            },
            // body: (\y. jump j y Int) 5  — jump under a lambda: rejected.
            Expr::app(
                Expr::lam(
                    y.clone(),
                    Expr::jump(&j, vec![], vec![Expr::var(&y.name)], Type::Int),
                ),
                Expr::Lit(5),
            ),
        );
        let err = bad(&e, &d.data_env);
        assert_eq!(err.kind, LintErrorKind::UnboundLabel(j));
    }

    /// Jumps survive in case scrutinees and branches (both keep Δ).
    #[test]
    fn jump_in_scrutinee_and_branches() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x.clone()],
                body: Expr::var(&x.name),
            },
            Expr::case(
                Expr::jump(&j, vec![], vec![Expr::Lit(1)], Type::bool()),
                vec![
                    Alt::simple(
                        AltCon::Con(Ident::new("True")),
                        Expr::jump(&j, vec![], vec![Expr::Lit(2)], Type::Int),
                    ),
                    Alt::simple(AltCon::Con(Ident::new("False")), Expr::Lit(0)),
                ],
            ),
        );
        assert_eq!(ok(&e, &d.data_env), Type::Int);
    }

    /// A polymorphic join point: `join j @a (x:a) = jump-free in …`.
    #[test]
    fn polymorphic_join() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let a = d.name("a");
        let x = Binder::new(d.name("x"), Type::Var(a.clone()));
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![a.clone()],
                params: vec![x],
                body: Expr::Lit(0),
            },
            Expr::jump(&j, vec![Type::bool()], vec![Expr::bool(false)], Type::Int),
        );
        assert_eq!(ok(&e, &d.data_env), Type::Int);
        // Wrong instantiation: passing a Bool where `a := Bool` but the
        // parameter was declared Int.
        let bad_e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![a],
                params: vec![Binder::new(d.name("x"), Type::Int)],
                body: Expr::Lit(0),
            },
            Expr::jump(&j, vec![Type::bool()], vec![Expr::bool(false)], Type::Int),
        );
        let err = bad(&bad_e, &d.data_env);
        assert!(matches!(err.kind, LintErrorKind::Mismatch { .. }));
    }

    /// Recursive join points scope over their own right-hand sides.
    #[test]
    fn recursive_join_loop() {
        let mut d = Dsl::new();
        let env = d.data_env.clone();
        let e = d.joinrec_loop(
            "go",
            vec![("n", Type::Int)],
            |_, go, ps| {
                Expr::ite(
                    Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                    Expr::Lit(0),
                    Expr::jump(
                        go,
                        vec![],
                        vec![Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1))],
                        Type::Int,
                    ),
                )
            },
            |_, go| Expr::jump(go, vec![], vec![Expr::Lit(10)], Type::Int),
        );
        assert_eq!(ok(&e, &env), Type::Int);
    }

    /// A NON-recursive join must not see itself (its own jump is unbound).
    #[test]
    fn nonrec_join_cannot_self_jump() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::jump(&j, vec![], vec![], Type::Int),
            },
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        let err = bad(&e, &d.data_env);
        assert_eq!(err.kind, LintErrorKind::UnboundLabel(j));
    }

    /// Jumps with wrong arity are rejected.
    #[test]
    fn jump_arity_mismatch() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x],
                body: Expr::Lit(0),
            },
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        let err = bad(&e, &d.data_env);
        assert!(matches!(err.kind, LintErrorKind::Arity { .. }));
    }

    /// `let` right-hand sides reset Δ: a jump there is rejected.
    #[test]
    fn jump_in_let_rhs_rejected() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let v = d.binder("v", Type::Int);
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::Lit(0),
            },
            Expr::let1(
                v.clone(),
                Expr::jump(&j, vec![], vec![], Type::Int),
                Expr::var(&v.name),
            ),
        );
        let err = bad(&e, &d.data_env);
        assert_eq!(err.kind, LintErrorKind::UnboundLabel(j));
    }

    /// …but `let` *bodies* keep Δ.
    #[test]
    fn jump_in_let_body_accepted() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let v = d.binder("v", Type::Int);
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::Lit(0),
            },
            Expr::let1(v, Expr::Lit(5), Expr::jump(&j, vec![], vec![], Type::Int)),
        );
        assert_eq!(ok(&e, &d.data_env), Type::Int);
    }

    /// Lenient `type_of` accepts jumps to out-of-fragment labels.
    #[test]
    fn type_of_is_lenient_about_labels() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let e = Expr::jump(&j, vec![], vec![Expr::Lit(1)], Type::bool());
        assert!(lint(&e, &d.data_env).is_err());
        let t = type_of(&e, &d.data_env, &Gamma::new()).unwrap();
        assert_eq!(t, Type::bool());
    }

    /// Unbound variables are still errors even leniently.
    #[test]
    fn type_of_still_requires_vars() {
        let mut d = Dsl::new();
        let x = d.name("x");
        let e = Expr::var(&x);
        assert!(type_of(&e, &d.data_env, &Gamma::new()).is_err());
        let mut g = Gamma::new();
        g.bind_var(x, Type::Int);
        assert_eq!(type_of(&e, &d.data_env, &g).unwrap(), Type::Int);
    }

    /// The error path breadcrumbs name the binders on the way to the
    /// fault, so a rollback reason (or a user diagnostic) points at the
    /// actual culprit binding, not just "somewhere in the term".
    #[test]
    fn error_path_names_the_culprit_binder() {
        let mut d = Dsl::new();
        let outer = d.binder("outer", Type::Int);
        let culprit = d.binder("culprit", Type::Int);
        let ghost = d.name("ghost");
        // let outer = 1 in let culprit = ghost in culprit
        //                                 ^^^^^ unbound
        let e = Expr::let1(
            outer.clone(),
            Expr::Lit(1),
            Expr::let1(culprit.clone(), Expr::var(&ghost), Expr::var(&culprit.name)),
        );
        let err = bad(&e, &d.data_env);
        assert!(matches!(err.kind, LintErrorKind::UnboundVar(_)), "{err:?}");
        let outer_step = format!("let {} body", outer.name);
        let culprit_step = format!("let {} rhs", culprit.name);
        assert_eq!(err.path, vec![outer_step, culprit_step], "{err}");
        // And the rendered diagnostic carries the trail.
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("let {} rhs", culprit.name)),
            "diagnostic lost the breadcrumb: {msg}"
        );
    }
}
