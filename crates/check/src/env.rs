//! Typing environments: Γ (term and type variables) and Δ (join labels).
//!
//! The central subtlety of the paper's type system (Fig. 2) is that Δ is
//! *reset to ε* in every premise whose runtime context is not statically
//! known — function arguments, lambda bodies, constructor arguments, `let`
//! right-hand sides. That is what confines jumps to positions where
//! "adjust the stack and jump" is a correct compilation strategy.

use fj_ast::{FxHashMap, Name, Type};

/// The Γ environment: term variables with their types, and the type
/// variables currently in scope.
#[derive(Clone, Debug, Default)]
pub struct Gamma {
    vars: FxHashMap<Name, Type>,
    tyvars: FxHashMap<Name, ()>,
}

impl Gamma {
    /// An empty Γ.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a term variable.
    pub fn bind_var(&mut self, x: Name, ty: Type) {
        self.vars.insert(x, ty);
    }

    /// Bind a type variable.
    pub fn bind_tyvar(&mut self, a: Name) {
        self.tyvars.insert(a, ());
    }

    /// Look up a term variable's type.
    pub fn var(&self, x: &Name) -> Option<&Type> {
        self.vars.get(x)
    }

    /// Is the type variable in scope?
    pub fn has_tyvar(&self, a: &Name) -> bool {
        self.tyvars.contains_key(a)
    }

    /// Number of term variables (diagnostics).
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Is Γ empty?
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.tyvars.is_empty()
    }
}

/// The signature of a join point in Δ: its type parameters and the types of
/// its value parameters (expressed over those type parameters).
#[derive(Clone, Debug)]
pub struct JoinSig {
    /// Bound type parameters `a⃗`.
    pub ty_params: Vec<Name>,
    /// Value parameter types `σ⃗`.
    pub param_tys: Vec<Type>,
}

/// The Δ environment: join labels in scope.
///
/// Cloning is cheap-ish (small maps); the checker clones at the few rules
/// that extend Δ and simply passes [`Delta::empty`] where the paper resets.
#[derive(Clone, Debug, Default)]
pub struct Delta {
    labels: FxHashMap<Name, JoinSig>,
}

impl Delta {
    /// The empty Δ (the paper's ε).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Extend with a label.
    pub fn bind(&mut self, j: Name, sig: JoinSig) {
        self.labels.insert(j, sig);
    }

    /// Look up a label.
    pub fn get(&self, j: &Name) -> Option<&JoinSig> {
        self.labels.get(j)
    }

    /// Is Δ empty?
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::NameSupply;

    #[test]
    fn gamma_binds_and_looks_up() {
        let mut s = NameSupply::new();
        let x = s.fresh("x");
        let mut g = Gamma::new();
        assert!(g.is_empty());
        g.bind_var(x.clone(), Type::Int);
        assert_eq!(g.var(&x), Some(&Type::Int));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn delta_empty_is_empty() {
        let mut s = NameSupply::new();
        let j = s.fresh("j");
        let mut d = Delta::empty();
        assert!(d.is_empty());
        d.bind(
            j.clone(),
            JoinSig {
                ty_params: vec![],
                param_tys: vec![Type::Int],
            },
        );
        assert!(d.get(&j).is_some());
        assert!(Delta::empty().get(&j).is_none());
    }
}
