//! The Simplifier — GHC's workhorse pass, for System F_J.
//!
//! Like GHC's simplifier (paper Sec. 7), this is "a tail-recursive
//! traversal that builds up a representation of the evaluation context as
//! it goes": [`Cont`] is the reified context `E`. The paper's axioms map
//! onto the traversal as follows:
//!
//! * `β`, `β_τ`, `case` — a lambda/type-lambda/constructor meeting the
//!   matching continuation reduces on the spot;
//! * `inline`/`drop` — occurrence-directed inlining of `let` bindings;
//! * `float`/`casefloat` — the pending continuation is pushed into `let`
//!   bodies and duplicated into `case` branches (with a fresh **join
//!   point** shared between branches when the context is too big to copy —
//!   footnote 5: "the Simplifier regularly creates join points to share
//!   evaluation contexts");
//! * **`jfloat`** — "when traversing a join-point binding, copy the
//!   evaluation context into the right-hand side";
//! * **`abort`** — "when traversing a jump, throw away the evaluation
//!   context";
//! * `jinline`/`jdrop` — once-used or tiny join points are inlined at
//!   their jumps and dead ones dropped.
//!
//! ## Semantics note
//!
//! Dead-code elimination (`drop`) follows the paper's lazy semantics: a
//! dead binding is removed even if its right-hand side would diverge.
//! Under the machine's call-by-value mode this can turn a diverging
//! program into a terminating one (never the reverse); all benchmarks
//! and tests in this repository are total, so the modes agree.
//!
//! ## Baseline mode
//!
//! With [`SimplOpts::join_points`] off the simplifier models GHC *before*
//! the paper: shared contexts become ordinary `let`-bound functions (which
//! the back end must heap-allocate), and a pending context is **not**
//! pushed into `join` bindings — reproducing exactly the "destroyed join
//! point" de-optimization of Sec. 2.

use crate::occur::{analyze, OccCount, OccMap};
use crate::stats::RewriteStats;
use crate::OptError;
use fj_ast::{
    alpha_fingerprint, free_labels, mentions_label, Alt, AltCon, Binder, DataEnv, Expr, FxHashMap,
    JoinBind, JoinDef, LetBind, Name, NameSupply, PrimResult, Type,
};
use fj_check::{type_of, Gamma};

/// Tuning knobs for the simplifier.
#[derive(Clone, Debug)]
pub struct SimplOpts {
    /// Exploit join points (`jfloat`/`abort`, join-point context sharing).
    /// Off = the paper's baseline compiler.
    pub join_points: bool,
    /// Inline multi-use value bindings up to this size.
    pub inline_size: usize,
    /// Duplicate a continuation into case branches up to this size;
    /// bigger contexts are shared through a fresh join point (or a
    /// `let`-bound function in baseline mode).
    pub dup_size: usize,
    /// Maximum simplifier rounds before settling.
    pub max_rounds: usize,
}

impl Default for SimplOpts {
    fn default() -> Self {
        SimplOpts {
            join_points: true,
            inline_size: 24,
            dup_size: 18,
            max_rounds: 6,
        }
    }
}

impl SimplOpts {
    /// The paper's baseline: joins treated like lets, contexts shared via
    /// `let`-bound functions.
    pub fn baseline() -> Self {
        SimplOpts {
            join_points: false,
            ..SimplOpts::default()
        }
    }
}

/// One simplifier round.
///
/// # Errors
///
/// Returns [`OptError`] if the input is ill-typed in a way the traversal
/// trips over (run the linter first for a precise report).
pub fn simplify_once(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    opts: &SimplOpts,
) -> Result<Expr, OptError> {
    let mut scratch = RewriteStats::default();
    simplify_once_stats(e, data_env, supply, opts, &mut scratch)
}

/// As [`simplify_once`], also accumulating rewrite-firing counters into
/// `stats` (the per-pass observability of [`crate::PipelineReport`]).
///
/// # Errors
///
/// As [`simplify_once`].
pub fn simplify_once_stats(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    opts: &SimplOpts,
    stats: &mut RewriteStats,
) -> Result<Expr, OptError> {
    simplify_once_changed(e, data_env, supply, opts, stats).map(|(e, _)| e)
}

/// As [`simplify_once_stats`], also reporting whether the round rewrote
/// anything at all. The flag covers rewrites the counters do not (e.g.
/// trivial-atom substitution), so `changed == false` is a sound witness
/// that the output is the input, which the pipeline uses to skip re-lint,
/// census, and repeat runs of the same pass.
///
/// # Errors
///
/// As [`simplify_once`].
pub fn simplify_once_changed(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    opts: &SimplOpts,
    stats: &mut RewriteStats,
) -> Result<(Expr, bool), OptError> {
    let occ = analyze(e);
    let mut s = Simplifier {
        data_env,
        supply,
        opts,
        occ,
        gamma: Gamma::new(),
        subst: FxHashMap::default(),
        join_inline: FxHashMap::default(),
        changed: false,
        stats,
    };
    let out = s.simpl(e, Cont::Stop)?;
    let changed = s.changed;
    Ok((out, changed))
}

/// Run simplifier rounds until the term stops changing (α-fingerprint) or
/// `opts.max_rounds` is hit.
///
/// # Errors
///
/// As [`simplify_once`].
pub fn simplify(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    opts: &SimplOpts,
) -> Result<Expr, OptError> {
    let mut scratch = RewriteStats::default();
    simplify_stats(e, data_env, supply, opts, &mut scratch)
}

/// As [`simplify`], also accumulating rewrite-firing counters across all
/// rounds into `stats`.
///
/// # Errors
///
/// As [`simplify_once`].
pub fn simplify_stats(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    opts: &SimplOpts,
    stats: &mut RewriteStats,
) -> Result<Expr, OptError> {
    let mut cur = e.clone();
    // The fingerprint of `cur`, computed lazily: a round that reports
    // `changed == false` exits without fingerprinting anything at all.
    let mut fp = None;
    for _ in 0..opts.max_rounds {
        let (next, changed) = simplify_once_changed(&cur, data_env, supply, opts, stats)?;
        if !changed {
            break;
        }
        let prev = fp.unwrap_or_else(|| alpha_fingerprint(&cur));
        let nfp = alpha_fingerprint(&next);
        cur = next;
        if nfp == prev {
            break;
        }
        fp = Some(nfp);
    }
    Ok(cur)
}

/// The reified evaluation context `E`, innermost frame first.
#[derive(Clone, Debug)]
enum Cont {
    /// `□` — nothing pending.
    Stop,
    /// `□ arg` (argument already simplified).
    ApplyTo(Expr, Box<Cont>),
    /// `□ τ`.
    ApplyToTy(Type, Box<Cont>),
    /// `case □ of alts` (alternatives not yet simplified).
    Select(Vec<Alt>, Box<Cont>),
}

impl Cont {
    fn is_stop(&self) -> bool {
        matches!(self, Cont::Stop)
    }

    /// Syntactic weight, for duplication decisions.
    fn size(&self) -> usize {
        match self {
            Cont::Stop => 0,
            Cont::ApplyTo(e, r) => e.size() + r.size(),
            Cont::ApplyToTy(_, r) => 1 + r.size(),
            Cont::Select(alts, r) => {
                alts.iter().map(|a| a.rhs.size() + 1).sum::<usize>() + r.size()
            }
        }
    }
}

/// Shared-context bindings produced by `mk_dupable`, to wrap around the
/// expression whose branches now invoke them.
enum Wrapper {
    Join(JoinDef),
    Let(Binder, Expr),
}

fn wrap_all(wrappers: Vec<Wrapper>, e: Expr) -> Expr {
    wrappers.into_iter().rev().fold(e, |acc, w| match w {
        Wrapper::Join(def) => Expr::join1(def, acc),
        Wrapper::Let(b, rhs) => Expr::let1(b, rhs, acc),
    })
}

struct Simplifier<'a> {
    data_env: &'a DataEnv,
    supply: &'a mut NameSupply,
    opts: &'a SimplOpts,
    occ: OccMap,
    /// Γ for every binder seen on the way down, maintained incrementally
    /// (binders are globally unique, so the environment only grows and is
    /// never rebuilt per `ty_of` query).
    gamma: Gamma,
    /// Pending value inlinings: binder ↦ simplified RHS.
    subst: FxHashMap<Name, Expr>,
    /// Pending join-point inlinings: label ↦ simplified definition.
    join_inline: FxHashMap<Name, JoinDef>,
    changed: bool,
    /// Rewrite-firing counters for this round (pipeline observability).
    stats: &'a mut RewriteStats,
}

impl Simplifier<'_> {
    fn record(&mut self, b: &Binder) {
        self.gamma.bind_var(b.name.clone(), b.ty.clone());
    }

    /// Record the types of all binders inside a freshly copied term, so
    /// later `type_of` queries can see them.
    fn record_all(&mut self, e: &Expr) {
        let mut stack = vec![e];
        while let Some(cur) = stack.pop() {
            match cur {
                Expr::Lam(b, body) => {
                    self.gamma.bind_var(b.name.clone(), b.ty.clone());
                    stack.push(body);
                }
                Expr::Case(s, alts) => {
                    stack.push(s);
                    for a in alts {
                        for b in &a.binders {
                            self.gamma.bind_var(b.name.clone(), b.ty.clone());
                        }
                        stack.push(&a.rhs);
                    }
                }
                Expr::Let(bind, body) => {
                    for b in bind.binders() {
                        self.gamma.bind_var(b.name.clone(), b.ty.clone());
                    }
                    for (_, rhs) in bind.pairs() {
                        stack.push(rhs);
                    }
                    stack.push(body);
                }
                Expr::Join(jb, body) => {
                    for d in jb.defs() {
                        for p in &d.params {
                            self.gamma.bind_var(p.name.clone(), p.ty.clone());
                        }
                        stack.push(&d.body);
                    }
                    stack.push(body);
                }
                Expr::App(f, a) => {
                    stack.push(f);
                    stack.push(a);
                }
                Expr::TyApp(f, _) | Expr::TyLam(_, f) => stack.push(f),
                Expr::Prim(_, args) | Expr::Con(_, _, args) => stack.extend(args.iter()),
                Expr::Jump(_, _, args, _) => stack.extend(args.iter()),
                Expr::Var(_) | Expr::Lit(_) => {}
            }
        }
    }

    fn ty_of(&self, e: &Expr) -> Result<Type, OptError> {
        type_of(e, self.data_env, &self.gamma).map_err(OptError::Type)
    }

    /// The type of `cont[hole]` given the hole's type.
    fn cont_result_ty(&mut self, cont: &Cont, input: &Type) -> Result<Type, OptError> {
        match cont {
            Cont::Stop => Ok(input.clone()),
            Cont::ApplyTo(_, r) => match input {
                Type::Fun(_, b) => self.cont_result_ty(r, b),
                other => Err(OptError::Internal(format!(
                    "applied context to non-function type {other}"
                ))),
            },
            Cont::ApplyToTy(t, r) => match input {
                Type::Forall(a, body) => {
                    let inst = body.subst1(a, t);
                    self.cont_result_ty(r, &inst)
                }
                other => Err(OptError::Internal(format!(
                    "type-applied context to non-forall type {other}"
                ))),
            },
            Cont::Select(alts, r) => {
                let alt = alts
                    .first()
                    .ok_or_else(|| OptError::Internal("empty case in continuation".into()))?;
                for b in &alt.binders {
                    self.gamma.bind_var(b.name.clone(), b.ty.clone());
                }
                self.record_all(&alt.rhs);
                let t = self.ty_of(&alt.rhs)?;
                self.cont_result_ty(r, &t)
            }
        }
    }

    /// Make a continuation cheap to duplicate into several branches.
    ///
    /// This follows the paper's Sec. 2 recipe: each *large* case
    /// alternative inside the pending context is bound as a join point
    /// (`let j1 () = BIG1; j2 x = BIG2 …`, except they really are joins
    /// here) so the case itself stays small enough to copy — which is
    /// what lets a known-constructor branch cancel against it. Large
    /// arguments are shared through `let`s. In baseline mode the shared
    /// alternatives become ordinary `let`-bound functions, reproducing
    /// the heap-allocating behaviour of GHC before the paper.
    ///
    /// `hole_ty` is the type of the expression that will be plugged in.
    fn mk_dupable(&mut self, cont: Cont, hole_ty: &Type) -> Result<(Cont, Vec<Wrapper>), OptError> {
        if cont.size() <= self.opts.dup_size {
            return Ok((cont, Vec::new()));
        }
        match cont {
            Cont::Stop => Ok((cont, Vec::new())),
            Cont::ApplyTo(arg, rest) => {
                let rest_hole = self
                    .cont_result_ty(&Cont::ApplyTo(arg.clone(), Box::new(Cont::Stop)), hole_ty)?;
                let (dup_rest, mut ws) = self.mk_dupable(*rest, &rest_hole)?;
                let arg2 = if arg.size() > self.opts.dup_size {
                    let arg_ty = self.ty_of(&arg)?;
                    let a = Binder::new(self.supply.fresh("sa"), arg_ty);
                    self.record(&a);
                    self.changed = true;
                    self.stats.shared_contexts += 1;
                    ws.push(Wrapper::Let(a.clone(), arg));
                    Expr::var(&a.name)
                } else {
                    arg
                };
                Ok((Cont::ApplyTo(arg2, Box::new(dup_rest)), ws))
            }
            Cont::ApplyToTy(t, rest) => {
                let rest_hole = self
                    .cont_result_ty(&Cont::ApplyToTy(t.clone(), Box::new(Cont::Stop)), hole_ty)?;
                let (dup_rest, ws) = self.mk_dupable(*rest, &rest_hole)?;
                Ok((Cont::ApplyToTy(t, Box::new(dup_rest)), ws))
            }
            Cont::Select(alts, rest) => {
                let alt_ty = {
                    let alt = alts
                        .first()
                        .ok_or_else(|| OptError::Internal("empty case".into()))?;
                    for b in &alt.binders {
                        self.gamma.bind_var(b.name.clone(), b.ty.clone());
                    }
                    self.record_all(&alt.rhs);
                    self.ty_of(&alt.rhs)?
                };
                let (dup_rest, mut ws) = self.mk_dupable(*rest, &alt_ty)?;
                let res_final = self.cont_result_ty(&dup_rest, &alt_ty)?;
                let mut alts2 = Vec::with_capacity(alts.len());
                for alt in alts {
                    if alt.rhs.size() <= self.opts.dup_size {
                        alts2.push(alt);
                        continue;
                    }
                    self.changed = true;
                    // Bind the big alternative as a join point over its
                    // field binders; the alternative becomes a jump.
                    let fresh_params: Vec<Binder> = alt
                        .binders
                        .iter()
                        .map(|b| {
                            let nb = Binder::new(self.supply.fresh_like(&b.name), b.ty.clone());
                            self.record(&nb);
                            nb
                        })
                        .collect();
                    let renamed = fj_ast::subst_terms(
                        &alt.rhs,
                        alt.binders
                            .iter()
                            .zip(&fresh_params)
                            .map(|(b, nb)| (b.name.clone(), Expr::var(&nb.name))),
                        self.supply,
                    );
                    self.record_all(&renamed);
                    let arg_vars: Vec<Expr> =
                        alt.binders.iter().map(|b| Expr::var(&b.name)).collect();
                    self.stats.shared_contexts += 1;
                    if self.opts.join_points {
                        // The join body absorbs the dupable context. That
                        // is sound *only* because the alternative becomes
                        // a jump: when the surrounding context is later
                        // pushed into the branches, the jump aborts it,
                        // so it is never applied twice.
                        let shared_body = self.simpl(&renamed, dup_rest.clone())?;
                        let j = self.supply.fresh("j");
                        ws.push(Wrapper::Join(JoinDef {
                            name: j.clone(),
                            ty_params: vec![],
                            params: fresh_params,
                            body: shared_body,
                        }));
                        alts2.push(Alt {
                            con: alt.con.clone(),
                            binders: alt.binders.clone(),
                            rhs: Expr::jump(&j, vec![], arg_vars, res_final.clone()),
                        });
                    } else {
                        // Baseline: an ordinary function (heap-allocated
                        // closure); zero-field alternatives share a thunk.
                        // The body must NOT absorb the context here — an
                        // ordinary call cannot abort the context that is
                        // later pushed into its branch, so absorbing it
                        // would apply it twice (and break typing). The
                        // function returns the hole type, and the context
                        // is duplicated around the call at each use.
                        let shared_body = self.simpl(&renamed, Cont::Stop)?;
                        let f_name = self.supply.fresh("sc");
                        let (f_ty, rhs_fun, call) = if fresh_params.is_empty() {
                            (alt_ty.clone(), shared_body, Expr::var(&f_name))
                        } else {
                            let f_ty = Type::funs(
                                fresh_params.iter().map(|b| b.ty.clone()),
                                alt_ty.clone(),
                            );
                            let fun = Expr::lams(fresh_params, shared_body);
                            let call = Expr::apps(Expr::var(&f_name), arg_vars);
                            (f_ty, fun, call)
                        };
                        let fb = Binder::new(f_name, f_ty);
                        self.record(&fb);
                        ws.push(Wrapper::Let(fb, rhs_fun));
                        alts2.push(Alt {
                            con: alt.con.clone(),
                            binders: alt.binders.clone(),
                            rhs: call,
                        });
                    }
                }
                Ok((Cont::Select(alts2, Box::new(dup_rest)), ws))
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn simpl(&mut self, e: &Expr, cont: Cont) -> Result<Expr, OptError> {
        match e {
            Expr::Var(x) => {
                if let Some(img) = self.subst.get(x).cloned() {
                    self.changed = true;
                    self.stats.inline += 1;
                    let copy = fj_ast::freshen(&img, self.supply);
                    self.record_all(&copy);
                    return self.simpl(&copy, cont);
                }
                self.apply_cont(Expr::var(x), cont)
            }
            Expr::Lit(_) => self.apply_cont(e.clone(), cont),
            Expr::Prim(op, args) => {
                let args2: Vec<Expr> = args
                    .iter()
                    .map(|a| self.simpl(a, Cont::Stop))
                    .collect::<Result<_, _>>()?;
                if let [Expr::Lit(a), Expr::Lit(b)] = args2.as_slice() {
                    if let Some(folded) = op.eval(*a, *b) {
                        self.changed = true;
                        self.stats.const_fold += 1;
                        let v = match folded {
                            PrimResult::Int(n) => Expr::Lit(n),
                            PrimResult::Bool(b) => Expr::bool(b),
                        };
                        return self.apply_cont(v, cont);
                    }
                }
                self.apply_cont(Expr::Prim(*op, args2), cont)
            }
            Expr::Lam(b, body) => match cont {
                Cont::ApplyTo(arg, rest) => {
                    // β: (λx.e) v  ⇒  let x = v in e, then the let logic
                    // decides whether to substitute or keep the binding.
                    self.changed = true;
                    self.stats.beta += 1;
                    self.record(b);
                    self.simpl_let_body(b.clone(), arg, body, *rest)
                }
                _ => {
                    self.record(b);
                    let body2 = self.simpl(body, Cont::Stop)?;
                    self.apply_cont(Expr::lam(b.clone(), body2), cont)
                }
            },
            Expr::TyLam(a, body) => match cont {
                Cont::ApplyToTy(t, rest) => {
                    self.changed = true;
                    self.stats.beta += 1;
                    let inst = fj_ast::subst_ty_in_expr(body, a, &t, self.supply);
                    self.record_all(&inst);
                    self.simpl(&inst, *rest)
                }
                _ => {
                    let body2 = self.simpl(body, Cont::Stop)?;
                    self.apply_cont(Expr::ty_lam(a.clone(), body2), cont)
                }
            },
            Expr::App(f, a) => {
                let a2 = self.simpl(a, Cont::Stop)?;
                self.simpl(f, Cont::ApplyTo(a2, Box::new(cont)))
            }
            Expr::TyApp(f, t) => self.simpl(f, Cont::ApplyToTy(t.clone(), Box::new(cont))),
            Expr::Con(c, tys, args) => {
                let args2: Vec<Expr> = args
                    .iter()
                    .map(|a| self.simpl(a, Cont::Stop))
                    .collect::<Result<_, _>>()?;
                self.apply_cont(Expr::Con(c.clone(), tys.clone(), args2), cont)
            }
            Expr::Case(s, alts) => self.simpl(s, Cont::Select(alts.clone(), Box::new(cont))),
            Expr::Let(bind, body) => self.simpl_let(bind, body, cont),
            Expr::Join(jb, body) => self.simpl_join(jb, body, cont),
            Expr::Jump(j, tys, args, res) => {
                let args2: Vec<Expr> = args
                    .iter()
                    .map(|a| self.simpl(a, Cont::Stop))
                    .collect::<Result<_, _>>()?;
                // `abort`: the context dies here; retarget the annotation.
                let res2 = if cont.is_stop() {
                    res.clone()
                } else {
                    self.changed = true;
                    self.stats.abort += 1;
                    self.cont_result_ty(&cont, res)?
                };
                if let Some(def) = self.join_inline.get(j).cloned() {
                    // `jinline` at a (contextually) tail jump: the inlined
                    // body already absorbed the surrounding context via
                    // jfloat, so the aborted continuation is not lost.
                    self.changed = true;
                    self.stats.join_inline += 1;
                    let mut inlined = def.body.clone();
                    for (b, arg) in def.params.iter().zip(args2.iter()).rev() {
                        inlined = Expr::let1(b.clone(), arg.clone(), inlined);
                    }
                    let mut s = fj_ast::Subst::new(self.supply);
                    for (a, t) in def.ty_params.iter().zip(tys.iter()) {
                        s = s.bind_ty(a.clone(), t.clone());
                    }
                    let inlined = s.apply(&inlined);
                    self.record_all(&inlined);
                    return self.simpl(&inlined, Cont::Stop);
                }
                Ok(Expr::Jump(j.clone(), tys.clone(), args2, res2))
            }
        }
    }

    /// A head that cannot interact further meets the continuation.
    #[allow(clippy::too_many_lines)]
    fn apply_cont(&mut self, head: Expr, cont: Cont) -> Result<Expr, OptError> {
        match cont {
            Cont::Stop => Ok(head),
            Cont::ApplyTo(a, rest) => self.apply_cont(Expr::app(head, a), *rest),
            Cont::ApplyToTy(t, rest) => self.apply_cont(Expr::ty_app(head, t), *rest),
            Cont::Select(alts, rest) => match &head {
                // The `case` axiom: a constructor or literal scrutinee
                // selects its alternative immediately.
                Expr::Con(c, _, args) => {
                    let alt = alts
                        .iter()
                        .find(|a| matches!(&a.con, AltCon::Con(c2) if c2 == c))
                        .or_else(|| alts.iter().find(|a| a.con == AltCon::Default))
                        .ok_or_else(|| OptError::Internal(format!("no alternative for {c}")))?;
                    self.changed = true;
                    self.stats.known_case += 1;
                    let mut rhs = alt.rhs.clone();
                    for (b, v) in alt.binders.iter().zip(args.iter()).rev() {
                        rhs = Expr::let1(b.clone(), v.clone(), rhs);
                    }
                    self.simpl(&rhs, *rest)
                }
                Expr::Lit(n) => {
                    let alt = alts
                        .iter()
                        .find(|a| matches!(&a.con, AltCon::Lit(m) if m == n))
                        .or_else(|| alts.iter().find(|a| a.con == AltCon::Default))
                        .ok_or_else(|| {
                            OptError::Internal(format!("no alternative for literal {n}"))
                        })?;
                    self.changed = true;
                    self.stats.known_case += 1;
                    let rhs = alt.rhs.clone();
                    self.simpl(&rhs, *rest)
                }
                _ => {
                    // Neutral scrutinee: rebuild the case, pushing the rest
                    // of the context into the branches (casefloat /
                    // case-of-case), sharing it when it is too big.
                    let hole_ty = {
                        let alt = alts
                            .first()
                            .ok_or_else(|| OptError::Internal("empty case".into()))?;
                        for b in &alt.binders {
                            self.gamma.bind_var(b.name.clone(), b.ty.clone());
                        }
                        self.record_all(&alt.rhs);
                        self.ty_of(&alt.rhs)?
                    };
                    let n_branches = alts.len();
                    let (dup, wrappers) = if n_branches > 1 {
                        self.mk_dupable(*rest, &hole_ty)?
                    } else {
                        (*rest, Vec::new())
                    };
                    if !dup.is_stop() {
                        // casefloat: the pending context is copied into
                        // every branch of the residual case.
                        self.changed = true;
                        self.stats.case_of_case += 1;
                    }
                    let mut alts2 = Vec::with_capacity(alts.len());
                    for alt in alts {
                        for b in &alt.binders {
                            self.record(b);
                        }
                        let rhs2 = self.simpl(&alt.rhs, dup.clone())?;
                        alts2.push(Alt {
                            con: alt.con.clone(),
                            binders: alt.binders.clone(),
                            rhs: rhs2,
                        });
                    }
                    Ok(wrap_all(wrappers, Expr::case(head, alts2)))
                }
            },
        }
    }

    fn simpl_let(&mut self, bind: &LetBind, body: &Expr, cont: Cont) -> Result<Expr, OptError> {
        match bind {
            LetBind::NonRec(b, rhs) => {
                self.record(b);
                let rhs2 = self.simpl(rhs, Cont::Stop)?;
                self.simpl_let_body(b.clone(), rhs2, body, cont)
            }
            LetBind::Rec(binds) => {
                for (b, _) in binds {
                    self.record(b);
                }
                // Dead-group elimination.
                let group_dead = binds
                    .iter()
                    .all(|(b, _)| self.occ.info(&b.name).count == OccCount::Dead);
                if group_dead {
                    self.changed = true;
                    self.stats.dead_drop += 1;
                    return self.simpl(body, cont);
                }
                let binds2: Vec<(Binder, Expr)> = binds
                    .iter()
                    .map(|(b, rhs)| Ok((b.clone(), self.simpl(rhs, Cont::Stop)?)))
                    .collect::<Result<_, OptError>>()?;
                // `float`: the pending context moves into the body.
                if !cont.is_stop() {
                    self.changed = true;
                }
                let body2 = self.simpl(body, cont)?;
                Ok(Expr::letrec(binds2, body2))
            }
        }
    }

    /// Decide the fate of a non-recursive binding whose RHS is simplified.
    fn simpl_let_body(
        &mut self,
        b: Binder,
        rhs: Expr,
        body: &Expr,
        cont: Cont,
    ) -> Result<Expr, OptError> {
        let trivial = rhs.is_atom() || matches!(&rhs, Expr::Con(_, _, args) if args.is_empty());
        if trivial {
            self.changed = true;
            self.subst.insert(b.name, rhs);
            return self.simpl(body, cont);
        }
        let info = self.occ.info(&b.name);
        match info.count {
            OccCount::Dead => {
                self.changed = true;
                self.stats.dead_drop += 1;
                self.simpl(body, cont)
            }
            OccCount::Once if !info.under_lambda => {
                self.subst.insert(b.name, rhs);
                self.changed = true;
                self.simpl(body, cont)
            }
            // A once-used *function value* moves freely even into a work
            // context: evaluating a lambda costs nothing and the code is
            // not duplicated. (Constructor answers stay put — rebuilding
            // a cell per loop iteration would be new work.)
            OccCount::Once if matches!(rhs, Expr::Lam(..) | Expr::TyLam(..)) => {
                self.subst.insert(b.name, rhs);
                self.changed = true;
                self.simpl(body, cont)
            }
            _ => {
                // Multi-use (or once under a lambda): inline only
                // *function* values small enough that code growth is
                // acceptable — copying a lambda duplicates neither work
                // nor allocation. Constructor cells stay shared: inlining
                // `let x = Just e` into several sites would rebuild the
                // cell at each one.
                if matches!(&rhs, Expr::Lam(..) | Expr::TyLam(..))
                    && rhs.size() <= self.opts.inline_size
                {
                    self.changed = true;
                    self.subst.insert(b.name, rhs);
                    return self.simpl(body, cont);
                }
                // Keep the binding; `float` the context into the body.
                if !cont.is_stop() {
                    self.changed = true;
                }
                let body2 = self.simpl(body, cont)?;
                Ok(Expr::let1(b, rhs, body2))
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn simpl_join(&mut self, jb: &JoinBind, body: &Expr, cont: Cont) -> Result<Expr, OptError> {
        for d in jb.defs() {
            for p in &d.params {
                self.record(p);
            }
        }
        // jdrop on entry: no jump in the body targets the group. The
        // occurrence analysis already counted jumps per label (the fused
        // occurrence+simplify walk), so a non-recursive join needs no
        // free-label traversal here: a zero count is a sound dead witness
        // (unanalyzed labels — freshened copies — report `usize::MAX`).
        // Recursive groups still walk: self-jumps in the definitions must
        // not keep the group alive.
        let any_live = match jb {
            JoinBind::NonRec(d) => self.occ.count(&d.name) != 0,
            JoinBind::Rec(_) => {
                let body_labels = free_labels(body);
                jb.labels().iter().any(|l| body_labels.contains(*l))
            }
        };
        if !any_live {
            self.changed = true;
            self.stats.dead_drop += 1;
            return self.simpl(body, cont);
        }

        if !self.opts.join_points {
            // Baseline: do NOT push the context into the join (no jfloat).
            // The context wraps the whole join expression, exactly the
            // motivating de-optimization of Sec. 2.
            let defs2: Vec<JoinDef> = jb
                .defs()
                .iter()
                .map(|d| {
                    Ok(JoinDef {
                        name: d.name.clone(),
                        ty_params: d.ty_params.clone(),
                        params: d.params.clone(),
                        body: self.simpl(&d.body, Cont::Stop)?,
                    })
                })
                .collect::<Result<_, OptError>>()?;
            let body2 = self.simpl(body, Cont::Stop)?;
            let jb2 = if jb.is_rec() {
                JoinBind::Rec(defs2)
            } else {
                JoinBind::NonRec(std::sync::Arc::new(
                    defs2.into_iter().next().expect("nonrec join has one def"),
                ))
            };
            return self.apply_cont(Expr::Join(jb2, Expr::share(body2)), cont);
        }

        // jfloat: duplicate the pending context into each RHS and the body.
        self.record_all(body);
        let hole_ty = self.ty_of(body)?;
        let (dup, wrappers) = self.mk_dupable(cont, &hole_ty)?;
        if !dup.is_stop() {
            self.changed = true;
            self.stats.jfloat += 1;
        }

        let defs2: Vec<JoinDef> = jb
            .defs()
            .iter()
            .map(|d| {
                Ok(JoinDef {
                    name: d.name.clone(),
                    ty_params: d.ty_params.clone(),
                    params: d.params.clone(),
                    body: self.simpl(&d.body, dup.clone())?,
                })
            })
            .collect::<Result<_, OptError>>()?;

        // jinline: a non-recursive join used exactly once (or tiny) is
        // inlined at its jumps while the body is simplified.
        if let JoinBind::NonRec(orig) = jb {
            let occ = self.occ.info(&orig.name);
            let def2 = defs2.into_iter().next().expect("nonrec join has one def");
            let small = def2.body.size() <= self.opts.inline_size;
            if occ.count == OccCount::Once || small {
                self.join_inline.insert(orig.name.clone(), def2.clone());
                let body2 = self.simpl(body, dup)?;
                let result = if mentions_label(&body2, &orig.name) {
                    Expr::join1(def2, body2)
                } else {
                    self.changed = true;
                    self.stats.dead_drop += 1;
                    body2
                };
                return Ok(wrap_all(wrappers, result));
            }
            let body2 = self.simpl(body, dup)?;
            let result = if mentions_label(&body2, &def2.name) {
                Expr::join1(def2, body2)
            } else {
                self.changed = true;
                self.stats.dead_drop += 1;
                body2
            };
            return Ok(wrap_all(wrappers, result));
        }

        let body2 = self.simpl(body, dup)?;
        // Drop dead defs from the recursive group.
        let mut live = free_labels(&body2);
        for d in &defs2 {
            live.extend(free_labels(&d.body));
        }
        let kept: Vec<JoinDef> = defs2
            .into_iter()
            .filter(|d| live.contains(&d.name))
            .collect();
        let result = if kept.is_empty() {
            self.changed = true;
            self.stats.dead_drop += 1;
            body2
        } else {
            Expr::Join(JoinBind::Rec(kept), Expr::share(body2))
        };
        Ok(wrap_all(wrappers, result))
    }
}
