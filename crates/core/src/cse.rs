//! Common-subexpression elimination.
//!
//! The paper's Sec. 8 argues for direct style over CPS partly because
//! "some transformations are much harder in CPS. For example, consider
//! common sub-expression elimination (CSE). In `f (g x) (g x)`, the
//! common sub-expression is easy to see. But it is much harder to find
//! in the CPS version." This pass is that argument made executable: a
//! straightforward top-down CSE over F_J that would indeed be awkward
//! over `letcont`-style code.
//!
//! The pass works on *pure* F_J (everything here is pure):
//!
//! * while traversing, keep a map from α-fingerprints of previously
//!   `let`-bound right-hand sides to their binders, and replace any
//!   later binding with an equal RHS by a reference to the first;
//! * additionally, if the two operands of an application/primop are
//!   syntactically equal non-trivial subexpressions, bind the first
//!   occurrence and reuse it (the `f (g x) (g x)` case).
//!
//! Scope discipline: a memoized binding is only reusable while its
//! binder is in scope, so the table is keyed per traversal path (we
//! thread an immutable-ish map, extended downward only). Expressions
//! under lambdas, join definitions, and case alternatives get their own
//! extension of the outer table (hoisting *out* of binders is Float
//! Out's job, not CSE's). Jumps and joins need no special handling —
//! another small direct-style dividend.

use fj_ast::FxHashMap;
use fj_ast::{
    alpha_fingerprint, free_vars, Alt, Binder, Expr, JoinDef, LetBind, Name, NameSupply, Type,
};

/// Result of running [`cse`]: the rewritten term and how many
/// subexpressions were deduplicated.
#[derive(Debug)]
pub struct CseOutcome {
    /// The rewritten term.
    pub expr: Expr,
    /// Number of replaced occurrences.
    pub replaced: usize,
}

/// Run common-subexpression elimination.
pub fn cse(e: &Expr, supply: &mut NameSupply) -> CseOutcome {
    let mut c = Cse {
        supply,
        replaced: 0,
    };
    let expr = c.go(e, &mut Memo::default());
    CseOutcome {
        expr,
        replaced: c.replaced,
    }
}

/// Memoized expressions available in the current scope:
/// fingerprint → (binder name, binder type).
#[derive(Clone, Default)]
struct Memo {
    map: FxHashMap<u64, (Name, Type)>,
    /// Names bound since the memo was captured — entries whose expression
    /// mentions variables bound later must not be reused, but since we
    /// only *add* entries at `let` sites (whose RHS is in scope exactly
    /// where the memo flows), freshly-bound case/lambda binders instead
    /// *invalidate* nothing; we simply avoid adding entries that mention
    /// them out of scope by construction.
    _private: (),
}

struct Cse<'s> {
    supply: &'s mut NameSupply,
    replaced: usize,
}

/// Is an expression worth memoizing? Atoms and nullary constructors are
/// cheaper than a variable reference is worth; anything else counts.
fn worthwhile(e: &Expr) -> bool {
    match e {
        Expr::Var(_) | Expr::Lit(_) => false,
        Expr::Con(_, _, args) => !args.is_empty(),
        Expr::Lam(..) | Expr::TyLam(..) => false, // sharing closures changes nothing
        Expr::Jump(..) => false,                  // control, not value
        _ => e.size() >= 3,
    }
}

impl Cse<'_> {
    #[allow(clippy::too_many_lines)]
    fn go(&mut self, e: &Expr, memo: &mut Memo) -> Expr {
        match e {
            Expr::Var(_) | Expr::Lit(_) => e.clone(),
            Expr::Prim(op, args) => {
                // The `f (g x) (g x)` case: equal sizable operands share.
                if args.len() == 2
                    && worthwhile(&args[0])
                    && alpha_fingerprint(&args[0]) == alpha_fingerprint(&args[1])
                {
                    self.replaced += 1;
                    let shared = self.go(&args[0], memo);
                    let b = Binder::new(self.supply.fresh("cse"), Type::Int);
                    let v = Expr::var(&b.name);
                    return Expr::let1(b, shared, Expr::Prim(*op, vec![v.clone(), v]));
                }
                Expr::Prim(*op, args.iter().map(|a| self.go(a, memo)).collect())
            }
            Expr::App(f, a) => Expr::app(self.go(f, memo), self.go(a, memo)),
            Expr::TyApp(f, t) => Expr::ty_app(self.go(f, memo), t.clone()),
            Expr::Con(c, tys, args) => Expr::Con(
                c.clone(),
                tys.clone(),
                args.iter().map(|a| self.go(a, memo)).collect(),
            ),
            Expr::Lam(b, body) => Expr::lam(b.clone(), self.go(body, memo)),
            Expr::TyLam(a, body) => Expr::ty_lam(a.clone(), self.go(body, memo)),
            Expr::Case(s, alts) => {
                let s2 = self.go(s, memo);
                let alts2 = alts
                    .iter()
                    .map(|alt| Alt {
                        con: alt.con.clone(),
                        binders: alt.binders.clone(),
                        rhs: self.go(&alt.rhs, memo),
                    })
                    .collect();
                Expr::case(s2, alts2)
            }
            Expr::Let(LetBind::NonRec(b, rhs), body) => {
                let rhs2 = self.go(rhs, memo);
                if worthwhile(&rhs2) {
                    let fp = alpha_fingerprint(&rhs2);
                    if let Some((prev, prev_ty)) = memo.map.get(&fp) {
                        if prev_ty.alpha_eq(&b.ty) {
                            // let x = E in C[x]  where  E was bound to
                            // `prev` before: rebind x to the variable.
                            self.replaced += 1;
                            let prev = prev.clone();
                            let body2 = self.go(body, memo);
                            return Expr::let1(b.clone(), Expr::var(&prev), body2);
                        }
                    }
                    // Memoize for the body — but only if the RHS doesn't
                    // mention the binder itself (it can't: non-recursive).
                    // Scoped mutate-and-restore: insert for the body walk,
                    // then put back whatever the entry displaced — no
                    // whole-map clone per binding.
                    debug_assert!(!free_vars(&rhs2).contains(&b.name));
                    let displaced = memo.map.insert(fp, (b.name.clone(), b.ty.clone()));
                    let body2 = self.go(body, memo);
                    match displaced {
                        Some(prev) => {
                            memo.map.insert(fp, prev);
                        }
                        None => {
                            memo.map.remove(&fp);
                        }
                    }
                    return Expr::let1(b.clone(), rhs2, body2);
                }
                Expr::let1(b.clone(), rhs2, self.go(body, memo))
            }
            Expr::Let(LetBind::Rec(binds), body) => {
                let binds2: Vec<(Binder, Expr)> = binds
                    .iter()
                    .map(|(b, rhs)| (b.clone(), self.go(rhs, memo)))
                    .collect();
                Expr::letrec(binds2, self.go(body, memo))
            }
            Expr::Join(jb, body) => {
                let mut jb2 = jb.clone();
                for d in jb2.defs_mut() {
                    let inner: &JoinDef = d;
                    let _ = inner;
                    d.body = self.go(&d.body, memo);
                }
                Expr::Join(jb2, Expr::share(self.go(body, memo)))
            }
            Expr::Jump(j, tys, args, res) => Expr::Jump(
                j.clone(),
                tys.clone(),
                args.iter().map(|a| self.go(a, memo)).collect(),
                res.clone(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{Dsl, PrimOp};
    use fj_eval::{run_int, EvalMode};

    const FUEL: u64 = 1_000_000;

    #[test]
    fn shares_equal_let_rhs() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let y = d.binder("y", Type::Int);
        // let x = 1+2 in let y = 1+2 in x * y
        let e = Expr::let1(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
            Expr::let1(
                y.clone(),
                Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
                Expr::prim2(PrimOp::Mul, Expr::var(&x.name), Expr::var(&y.name)),
            ),
        );
        let out = cse(&e, &mut d.supply);
        assert_eq!(out.replaced, 1, "{}", out.expr);
        assert_eq!(run_int(&out.expr, EvalMode::CallByName, FUEL).unwrap(), 9);
        // The second binding is now just a variable copy.
        match &out.expr {
            Expr::Let(_, body) => match &**body {
                Expr::Let(LetBind::NonRec(_, rhs), _) => {
                    assert!(matches!(&**rhs, Expr::Var(_)), "{}", out.expr)
                }
                other => panic!("expected inner let, got {other}"),
            },
            other => panic!("expected let, got {other}"),
        }
    }

    #[test]
    fn shares_twin_primop_operands() {
        let mut d = Dsl::new();
        let g = d.binder("g", Type::fun(Type::Int, Type::Int));
        let x = d.binder("x", Type::Int);
        // (\g. g 5 + g 5) (\x. x * 2) — the paper's `f (g x) (g x)`.
        let e = Expr::app(
            Expr::lam(
                g.clone(),
                Expr::prim2(
                    PrimOp::Add,
                    Expr::app(Expr::var(&g.name), Expr::Lit(5)),
                    Expr::app(Expr::var(&g.name), Expr::Lit(5)),
                ),
            ),
            Expr::lam(
                x.clone(),
                Expr::prim2(PrimOp::Mul, Expr::var(&x.name), Expr::Lit(2)),
            ),
        );
        let out = cse(&e, &mut d.supply);
        assert_eq!(out.replaced, 1, "{}", out.expr);
        assert_eq!(run_int(&out.expr, EvalMode::CallByName, FUEL).unwrap(), 20);
    }

    #[test]
    fn respects_types_and_triviality() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let y = d.binder("y", Type::Int);
        // Trivial RHSs are not shared (no gain).
        let e = Expr::let1(
            x,
            Expr::Lit(5),
            Expr::let1(y.clone(), Expr::Lit(5), Expr::var(&y.name)),
        );
        let out = cse(&e, &mut d.supply);
        assert_eq!(out.replaced, 0);
    }

    #[test]
    fn scope_blocks_reuse_across_lambdas_is_still_sound() {
        // The memo flows into lambdas (the binding is still in scope).
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let f = d.binder("f", Type::fun(Type::Int, Type::Int));
        let a = d.binder("a", Type::Int);
        // let x = 3*7 in let f = \a. let y = 3*7 in y + a in f x
        let y = d.binder("y", Type::Int);
        let e = Expr::let1(
            x.clone(),
            Expr::prim2(PrimOp::Mul, Expr::Lit(3), Expr::Lit(7)),
            Expr::let1(
                f.clone(),
                Expr::lam(
                    a.clone(),
                    Expr::let1(
                        y.clone(),
                        Expr::prim2(PrimOp::Mul, Expr::Lit(3), Expr::Lit(7)),
                        Expr::prim2(PrimOp::Add, Expr::var(&y.name), Expr::var(&a.name)),
                    ),
                ),
                Expr::app(Expr::var(&f.name), Expr::var(&x.name)),
            ),
        );
        let out = cse(&e, &mut d.supply);
        assert_eq!(out.replaced, 1, "{}", out.expr);
        assert_eq!(run_int(&out.expr, EvalMode::CallByName, FUEL).unwrap(), 42);
    }

    #[test]
    fn join_bodies_participate() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let p = d.binder("p", Type::Int);
        let x = d.binder("x", Type::Int);
        let y = d.binder("y", Type::Int);
        let e = Expr::let1(
            x.clone(),
            Expr::prim2(PrimOp::Mul, Expr::Lit(6), Expr::Lit(7)),
            Expr::join1(
                fj_ast::JoinDef {
                    name: j.clone(),
                    ty_params: vec![],
                    params: vec![p.clone()],
                    body: Expr::let1(
                        y.clone(),
                        Expr::prim2(PrimOp::Mul, Expr::Lit(6), Expr::Lit(7)),
                        Expr::prim2(PrimOp::Add, Expr::var(&y.name), Expr::var(&p.name)),
                    ),
                },
                Expr::jump(&j, vec![], vec![Expr::var(&x.name)], Type::Int),
            ),
        );
        let out = cse(&e, &mut d.supply);
        assert_eq!(out.replaced, 1, "{}", out.expr);
        assert_eq!(run_int(&out.expr, EvalMode::CallByName, FUEL).unwrap(), 84);
    }
}
