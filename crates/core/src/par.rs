//! Parallel batch compilation: `optimize_many` and the `par_map` work
//! queue underneath it.
//!
//! Per-program optimization is embarrassingly parallel — each job carries
//! its own term, datatype environment, and [`NameSupply`] — so a fixed
//! pool of scoped threads pulling indices off an atomic counter is all
//! the machinery needed. The workspace builds offline, so this is a
//! dependency-free stand-in for a rayon `par_iter`: same work-stealing
//! effect for the coarse-grained jobs we have (one job = one whole
//! pipeline run), none of the registry.

use crate::pipeline::{optimize_with_report, OptConfig};
use crate::stats::PipelineReport;
use crate::OptError;
use fj_ast::{DataEnv, Expr, NameSupply};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` on a scoped thread pool, preserving order.
///
/// Spawns at most `available_parallelism()` workers (never more than
/// there are items); each worker claims the next unclaimed index until
/// the queue drains. Falls back to a plain serial map when there is no
/// parallelism to exploit. A panic in `f` propagates to the caller when
/// the scope joins, like the serial map it replaces.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("par_map: index claimed twice");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("par_map: worker left a hole")
        })
        .collect()
}

/// How many workers [`par_map`] would use for a batch of `jobs` items.
pub fn par_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

/// Optimize a batch of independent programs in parallel, one pipeline
/// run per job, preserving input order.
///
/// Each job is `(term, datatype environment, name supply)` — the supply
/// is per-program (lowering already positions it past all program
/// names), which is what makes the batch embarrassingly parallel. This
/// is the driver behind `fj bench --phase optimize` and the batch modes
/// of the differential suites.
pub fn optimize_many(
    jobs: Vec<(Expr, DataEnv, NameSupply)>,
    cfg: &OptConfig,
) -> Vec<Result<(Expr, PipelineReport), OptError>> {
    par_map(jobs, |(e, data_env, mut supply)| {
        optimize_with_report(&e, &data_env, &mut supply, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..100).collect();
        let ys = par_map(xs, |x| x * 2);
        assert_eq!(ys, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(Vec::<usize>::new(), |x| x), Vec::<usize>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }
}
