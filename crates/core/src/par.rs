//! Parallel batch compilation: `optimize_many` and the `par_map` work
//! queue underneath it.
//!
//! Per-program optimization is embarrassingly parallel — each job carries
//! its own term, datatype environment, and [`NameSupply`] — so a fixed
//! pool of scoped threads pulling indices off an atomic counter is all
//! the machinery needed. The workspace builds offline, so this is a
//! dependency-free stand-in for a rayon `par_iter`: same work-stealing
//! effect for the coarse-grained jobs we have (one job = one whole
//! pipeline run), none of the registry.

use crate::pipeline::{optimize_with_report, OptConfig};
use crate::stats::PipelineReport;
use crate::OptError;
use fj_ast::{DataEnv, Expr, NameSupply};
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer / multi-consumer FIFO queue with
/// *non-blocking* admission: [`try_push`](BoundedQueue::try_push) never
/// waits — a full queue rejects the item so the producer can shed load
/// instead of queueing without limit. Consumers block in
/// [`pop`](BoundedQueue::pop) until an item arrives or the queue is
/// [`close`](BoundedQueue::close)d *and* drained, which is exactly the
/// drain protocol a graceful shutdown wants: admission stops, in-flight
/// work finishes.
///
/// This is the admission-control primitive under `fj serve`'s worker
/// pool; it lives here next to [`par_map`] because it is the same kind
/// of dependency-free parallel machinery.
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `cap` queued items (minimum 1).
    pub fn new(cap: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admit `item`, or hand it back when the queue is full or closed.
    /// Never blocks: rejection is the backpressure signal.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` so the caller can shed it with context.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed || inner.items.len() >= self.cap {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available and take it. Returns `None` once
    /// the queue is closed *and* every queued item has been consumed —
    /// consumers drain in-flight work before exiting.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// How many items are queued right now (racy, for stats/heuristics).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .items
            .len()
    }

    /// Is the queue empty right now (racy, for drain polling)?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stop admitting new items and wake every blocked consumer. Queued
    /// items remain poppable; `pop` returns `None` only once they drain.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// Map `f` over `items` on a scoped thread pool, preserving order.
///
/// Spawns at most `available_parallelism()` workers (never more than
/// there are items); each worker claims the next unclaimed index until
/// the queue drains. Falls back to a plain serial map when there is no
/// parallelism to exploit. A panic in `f` propagates to the caller when
/// the scope joins, like the serial map it replaces — and it *poisons*
/// the batch: surviving workers stop claiming new indices as soon as
/// they observe the flag, so a doomed batch fails fast instead of
/// grinding through the rest of the queue first.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(items.len());
    par_map_with_threads(items, threads, f)
}

/// [`par_map`] with an explicit worker count (tests pin the pool size so
/// the poison-flag behaviour is observable on any machine).
fn par_map_with_threads<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Set by the first worker whose job panics; checked before every
    // claim. Without it, one panicking job left the other workers
    // draining the whole queue before the scope join could re-raise —
    // wasted work at best, and at worst a long stall between the fault
    // and its report.
    let poisoned = AtomicBool::new(false);
    // The panicking job's payload, re-raised on the caller's thread after
    // the scope joins (a scoped-thread panic would otherwise be replaced
    // by the generic "a scoped thread panicked" payload).
    let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if poisoned.load(Ordering::Acquire) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("par_map: index claimed twice");
                match panic::catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => *results[i].lock().unwrap() = Some(out),
                    Err(payload) => {
                        if !poisoned.swap(true, Ordering::AcqRel) {
                            *first_panic.lock().unwrap() = Some(payload);
                        }
                        break;
                    }
                }
            });
        }
    });
    if let Some(payload) = first_panic.into_inner().unwrap() {
        panic::resume_unwind(payload);
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("par_map: worker left a hole")
        })
        .collect()
}

/// How many workers [`par_map`] would use for a batch of `jobs` items.
pub fn par_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

/// Optimize a batch of independent programs in parallel, one pipeline
/// run per job, preserving input order.
///
/// Each job is `(term, datatype environment, name supply)` — the supply
/// is per-program (lowering already positions it past all program
/// names), which is what makes the batch embarrassingly parallel. This
/// is the driver behind `fj bench --phase optimize` and the batch modes
/// of the differential suites.
pub fn optimize_many(
    jobs: Vec<(Expr, DataEnv, NameSupply)>,
    cfg: &OptConfig,
) -> Vec<Result<(Expr, PipelineReport), OptError>> {
    par_map(jobs, |(e, data_env, mut supply)| {
        optimize_with_report(&e, &data_env, &mut supply, cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let xs: Vec<usize> = (0..100).collect();
        let ys = par_map(xs, |x| x * 2);
        assert_eq!(ys, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_empty_and_single() {
        assert_eq!(par_map(Vec::<usize>::new(), |x| x), Vec::<usize>::new());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    /// Regression: one panicking job must poison the whole batch. Before
    /// the poison flag, the surviving worker drained every remaining
    /// index; now it stops at the first claim after the panic. The job
    /// bodies sleep so the panic (job 0, instant) lands while the queue
    /// is still nearly full, making the counter discriminate sharply.
    #[test]
    fn par_map_panic_poisons_the_batch() {
        const JOBS: usize = 64;
        let ran_after_panic = AtomicUsize::new(0);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_with_threads((0..JOBS).collect::<Vec<_>>(), 2, |i| {
                if i == 0 {
                    crate::guard::install_quiet_panic_hook();
                    let _quiet = crate::guard::Quiet::on();
                    panic!("par_map poison test");
                }
                ran_after_panic.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(2));
                i
            })
        }));
        assert!(outcome.is_err(), "the injected panic must propagate");
        let ran = ran_after_panic.load(Ordering::SeqCst);
        assert!(
            ran < JOBS / 2,
            "poison flag ignored: {ran} of {} jobs still ran after the panic",
            JOBS - 1
        );
    }

    #[test]
    fn bounded_queue_sheds_when_full_and_drains_on_close() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        // Full: admission is refused, the item comes back.
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.len(), 2);
        q.close();
        // Closed: refused even though consuming would make room.
        assert_eq!(q.try_push(4), Err(4));
        // Queued work still drains, in FIFO order, then `None`.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_queue_close_wakes_blocked_consumers() {
        let q = std::sync::Arc::new(BoundedQueue::<usize>::new(4));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(
            consumer.join().expect("consumer must not panic"),
            None,
            "a blocked pop must observe close"
        );
    }

    #[test]
    fn bounded_queue_moves_items_across_threads() {
        let q = std::sync::Arc::new(BoundedQueue::<usize>::new(8));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(x) = q.pop() {
                    got.push(x);
                }
                got
            })
        };
        let mut pushed = 0usize;
        for i in 0..100 {
            // Shed-and-retry producer: the consumer guarantees progress.
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
            pushed += 1;
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), pushed);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "FIFO order violated");
    }

    /// The panic payload that reaches the caller is the injected one, not
    /// a poison-bookkeeping artifact.
    #[test]
    fn par_map_propagates_the_original_payload() {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            par_map_with_threads(vec![0, 1], 2, |i| {
                if i == 1 {
                    crate::guard::install_quiet_panic_hook();
                    let _quiet = crate::guard::Quiet::on();
                    panic!("original payload");
                }
                i
            })
        }));
        let payload = outcome.expect_err("must panic");
        let msg = payload
            .downcast_ref::<&'static str>()
            .copied()
            .unwrap_or("");
        assert_eq!(msg, "original payload");
    }
}
