//! Whole-optimizer tests: the paper's worked examples, run end-to-end
//! through the pipeline and validated against the abstract machine and
//! Core Lint.

use crate::{contify, contify_counting, erase, optimize, simplify, OptConfig, SimplOpts};
use fj_ast::{
    alpha_eq, Alt, AltCon, Binder, DataEnv, Dsl, Expr, Ident, JoinDef, NameSupply, PrimOp, Type,
};
use fj_check::lint;
use fj_eval::{run, run_int, EvalMode, Value};

const FUEL: u64 = 2_000_000;

fn modes() -> [EvalMode; 3] {
    [
        EvalMode::CallByName,
        EvalMode::CallByNeed,
        EvalMode::CallByValue,
    ]
}

/// Optimize with lint-between-passes forced on and check observational
/// equivalence in all modes; returns the optimized term.
fn optimize_checked(e: &Expr, dsl: &mut Dsl, cfg: &OptConfig) -> Expr {
    let cfg = cfg.clone().with_lint(true);
    lint(e, &dsl.data_env).unwrap_or_else(|err| panic!("input ill-typed: {err}\n{e}"));
    let out = optimize(e, &dsl.data_env, &mut dsl.supply, &cfg)
        .unwrap_or_else(|err| panic!("optimize failed: {err}"));
    for mode in modes() {
        let a = run(e, mode, FUEL).unwrap_or_else(|er| panic!("{mode:?} before: {er}\n{e}"));
        let b = run(&out, mode, FUEL).unwrap_or_else(|er| panic!("{mode:?} after: {er}\n{out}"));
        assert_eq!(a.value, b.value, "{mode:?}\nbefore:\n{e}\nafter:\n{out}");
    }
    out
}

/// Sec. 2's `null as = isNothing (mHead as)` after inlining: a case of a
/// case, which must collapse to a single case.
fn null_program(d: &mut Dsl) -> (Binder, Expr) {
    let as_ = d.binder("as", d.list_ty(Type::Int));
    let nil_rhs = d.nothing(Type::Int);
    let inner = d.case_list(Type::Int, Expr::var(&as_.name), nil_rhs, |d2, h, _| {
        d2.just(Type::Int, Expr::var(h))
    });
    let outer = d.case_maybe(Type::Int, inner, Expr::bool(true), |_, _| Expr::bool(false));
    (as_.clone(), Expr::lam(as_, outer))
}

#[test]
fn case_of_case_collapses_null() {
    let mut d = Dsl::new();
    let (_, program) = null_program(&mut d);
    let out = optimize_checked(&program, &mut d, &OptConfig::join_points());

    // Expected: \as. case as of { Nil -> True; Cons h t -> False }
    let expected = {
        let mut d2 = Dsl::new();
        let as2 = d2.binder("as", d2.list_ty(Type::Int));
        let body = d2.case_list(
            Type::Int,
            Expr::var(&as2.name),
            Expr::bool(true),
            |_, _, _| Expr::bool(false),
        );
        Expr::lam(as2, body)
    };
    assert!(
        alpha_eq(&out, &expected),
        "got:\n{out}\nexpected:\n{expected}"
    );
}

/// Sec. 2's BIG example: when the outer case's branches are large, the
/// simplifier shares them through a join point instead of duplicating.
#[test]
fn big_branches_become_shared_join_point() {
    let mut d = Dsl::new();
    let v = d.binder("v", Type::bool());
    // big(i) — an expression over x big enough to exceed dup_size.
    let big = |x: Expr| {
        let mut acc = x;
        for i in 0..12 {
            acc = Expr::prim2(PrimOp::Add, acc, Expr::Lit(i));
        }
        acc
    };
    let x = d.binder("x", Type::Int);
    // case (case v of True -> Just 1; False -> Nothing) of
    //   Nothing -> BIG1; Just x -> BIG2(x)
    let inner = Expr::ite(
        Expr::var(&v.name),
        d.just(Type::Int, Expr::Lit(1)),
        d.nothing(Type::Int),
    );
    let outer = Expr::case(
        inner,
        vec![
            Alt::simple(AltCon::Con(Ident::new("Nothing")), big(Expr::Lit(100))),
            Alt {
                con: AltCon::Con(Ident::new("Just")),
                binders: vec![x.clone()],
                rhs: big(Expr::var(&x.name)),
            },
        ],
    );
    let program = Expr::lam(v, outer);
    let out = optimize_checked(&program, &mut d, &OptConfig::join_points());
    // After case-of-case both branches reduce to direct code; since the
    // scrutinee v is a variable, the simplified form is a single case on v
    // (the Just/Nothing cells are gone entirely).
    let mut cons = 0usize;
    out.walk(&mut |e| {
        if matches!(e, Expr::Con(c, _, _) if c.as_str() == "Just" || c.as_str() == "Nothing") {
            cons += 1;
        }
    });
    assert_eq!(cons, 0, "Maybe cells must be gone:\n{out}");
}

/// The paper's central de-optimization: in baseline mode, case-of-case on
/// a join point destroys it; in join-points mode it survives. We observe
/// the difference in machine allocations.
#[test]
fn join_point_preserved_vs_destroyed() {
    // Program sketch (Sec. 2):
    //   \v. case (join j x = BIG in case v of
    //               A -> jump j 1 | B -> jump j 2 | C -> True) of
    //       True -> False ; False -> True
    // We encode A|B|C as Int cases on v, with an actual join in the input.
    let build = |d: &mut Dsl| {
        let v = d.binder("v", Type::Int);
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        // BIG: big enough not to be inlined (multi-use, size > threshold).
        let mut big = Expr::var(&x.name);
        for i in 0..30 {
            big = Expr::prim2(PrimOp::Add, big, Expr::Lit(i));
        }
        let big = Expr::prim2(PrimOp::Gt, big, Expr::Lit(200));
        let inner = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x],
                body: big,
            },
            Expr::case(
                Expr::var(&v.name),
                vec![
                    Alt::simple(
                        AltCon::Lit(0),
                        Expr::jump(&j, vec![], vec![Expr::Lit(1)], Type::bool()),
                    ),
                    Alt::simple(
                        AltCon::Lit(1),
                        Expr::jump(&j, vec![], vec![Expr::Lit(2)], Type::bool()),
                    ),
                    Alt::simple(AltCon::Default, Expr::bool(true)),
                ],
            ),
        );
        let outer = Expr::ite(inner, Expr::bool(false), Expr::bool(true));
        Expr::lam(v, outer)
    };

    let mut d1 = Dsl::new();
    let prog1 = build(&mut d1);
    lint(&prog1, &d1.data_env).unwrap();
    let cfg = OptConfig::join_points().with_lint(true);
    let joined = optimize(&prog1, &d1.data_env, &mut d1.supply, &cfg).unwrap();

    // In the join-points output, the join must still exist (it is
    // multi-use and big) and the outer case must have been consumed into
    // its right-hand side (jfloat), so the body's jumps are direct.
    assert!(joined.has_join_or_jump(), "join must survive:\n{joined}");

    // Semantics: identical on every input that reaches each branch.
    for v in [0_i64, 1, 7] {
        let before = Expr::app(prog1.clone(), Expr::Lit(v));
        let after = Expr::app(joined.clone(), Expr::Lit(v));
        for mode in modes() {
            let a = run(&before, mode, FUEL).unwrap().value;
            let b = run(&after, mode, FUEL).unwrap().value;
            assert_eq!(a, b, "{mode:?} at v={v}");
        }
    }
}

/// Sec. 5's `find`/`any`: contification turns the local loop into a
/// recursive join point, and the consumer's case then fuses into the
/// loop's return points.
#[test]
fn find_any_contifies_and_fuses() {
    let mut d = Dsl::new();
    // any p xs = case (let rec go xs = case xs of
    //                     Nil -> Nothing
    //                     Cons y ys -> if y > 3 then Just y else go ys
    //                  in go xs0) of
    //              Nothing -> False; Just _ -> True
    let xs0 = d.int_list(&[1, 2, 3, 4, 5]);
    let maybe_int = d.maybe_ty(Type::Int);
    let list_int = d.list_ty(Type::Int);
    let find = d.letrec_loop(
        "go",
        vec![("xs", list_int)],
        maybe_int,
        |d2, go, ps| {
            let nil_rhs = d2.nothing(Type::Int);
            d2.case_list(Type::Int, Expr::var(&ps[0]), nil_rhs, |d3, y, ys| {
                Expr::ite(
                    Expr::prim2(PrimOp::Gt, Expr::var(y), Expr::Lit(3)),
                    d3.just(Type::Int, Expr::var(y)),
                    Expr::app(Expr::var(go), Expr::var(ys)),
                )
            })
        },
        |_, go| Expr::app(Expr::var(go), xs0),
    );
    let program = d.case_maybe(Type::Int, find, Expr::bool(false), |_, _| Expr::bool(true));

    // Contification alone converts go.
    let (contified, n) = contify_counting(&program, &d.data_env).unwrap();
    assert_eq!(n, 1, "go must contify:\n{contified}");
    assert!(lint(&contified, &d.data_env).is_ok());

    // Full pipeline: the loop is a join, the consumer's case is gone from
    // around it, and the loop allocates nothing but the input list.
    let out = optimize_checked(&program, &mut d, &OptConfig::join_points());
    assert!(out.has_join_or_jump(), "loop must be a join point:\n{out}");
    let joined = run(&out, EvalMode::CallByValue, FUEL).unwrap();
    assert_eq!(joined.value, Value::Con(Ident::new("True"), vec![]));
    // No Maybe constructors remain: the case fused into the loop.
    let mut maybes = 0usize;
    out.walk(&mut |e| {
        if matches!(e, Expr::Con(c, _, _) if c.as_str() == "Just" || c.as_str() == "Nothing") {
            maybes += 1;
        }
    });
    assert_eq!(maybes, 0, "Maybe cells must fuse away:\n{out}");
}

/// Non-tail calls must not contify.
#[test]
fn non_tail_call_not_contified() {
    let mut d = Dsl::new();
    let f = d.binder("f", Type::fun(Type::Int, Type::Int));
    let x = d.binder("x", Type::Int);
    // let f = \x. x + 1 in f (f 1)   — inner call is an argument.
    let e = Expr::let1(
        f.clone(),
        Expr::lam(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
        ),
        Expr::app(
            Expr::var(&f.name),
            Expr::app(Expr::var(&f.name), Expr::Lit(1)),
        ),
    );
    let (out, n) = contify_counting(&e, &d.data_env).unwrap();
    assert_eq!(n, 0, "must not contify:\n{out}");
}

/// The return-type proviso: a function whose body type differs from the
/// let body's type cannot become a join point.
#[test]
fn return_type_mismatch_not_contified() {
    let mut d = Dsl::new();
    let f = d.binder("f", Type::fun(Type::Int, Type::Int));
    let x = d.binder("x", Type::Int);
    // let f = \x. x in (f 1) > 0   — the call is not in tail position
    // (it is a primop operand), and the types differ (Int vs Bool).
    let e = Expr::let1(
        f.clone(),
        Expr::lam(x.clone(), Expr::var(&x.name)),
        Expr::prim2(
            PrimOp::Gt,
            Expr::app(Expr::var(&f.name), Expr::Lit(1)),
            Expr::Lit(0),
        ),
    );
    let (_, n) = contify_counting(&e, &d.data_env).unwrap();
    assert_eq!(n, 0);
}

/// The Moby staging (Sec. 4): Float In + contify + simplify achieves the
/// local-CPS effect for a function used only inside a case scrutinee.
#[test]
fn moby_staging_contifies_through_context() {
    let mut d = Dsl::new();
    let f = d.binder("f", Type::fun(Type::Int, Type::Int));
    let x = d.binder("x", Type::Int);
    // let f x = x * 2 in case (case v of {0 -> f 3; _ -> f 4}) of ...
    let v = d.binder("v", Type::Int);
    let inner = Expr::case(
        Expr::var(&v.name),
        vec![
            Alt::simple(AltCon::Lit(0), Expr::app(Expr::var(&f.name), Expr::Lit(3))),
            Alt::simple(AltCon::Default, Expr::app(Expr::var(&f.name), Expr::Lit(4))),
        ],
    );
    let program = Expr::app(
        Expr::lam(
            v,
            Expr::let1(
                f,
                Expr::lam(
                    x.clone(),
                    Expr::prim2(PrimOp::Mul, Expr::var(&x.name), Expr::Lit(2)),
                ),
                Expr::case(
                    inner,
                    vec![
                        Alt::simple(AltCon::Lit(6), Expr::Lit(60)),
                        Alt::simple(AltCon::Default, Expr::Lit(0)),
                    ],
                ),
            ),
        ),
        Expr::Lit(0),
    );
    let out = optimize_checked(&program, &mut d, &OptConfig::join_points());
    assert_eq!(run_int(&out, EvalMode::CallByName, FUEL).unwrap(), 60);
}

/// Baseline vs join-points on a loop+consumer program: the joined version
/// allocates strictly less on the machine.
#[test]
fn pipeline_reduces_allocations_vs_baseline() {
    let build = |d: &mut Dsl, n: i64| {
        let list = {
            let xs: Vec<i64> = (1..=n).collect();
            d.int_list(&xs)
        };
        let maybe_int = d.maybe_ty(Type::Int);
        let list_int = d.list_ty(Type::Int);
        let find = d.letrec_loop(
            "go",
            vec![("xs", list_int)],
            maybe_int,
            |d2, go, ps| {
                let nil_rhs = d2.nothing(Type::Int);
                d2.case_list(Type::Int, Expr::var(&ps[0]), nil_rhs, |d3, y, ys| {
                    Expr::ite(
                        Expr::prim2(PrimOp::Gt, Expr::var(y), Expr::Lit(1_000_000)),
                        d3.just(Type::Int, Expr::var(y)),
                        Expr::app(Expr::var(go), Expr::var(ys)),
                    )
                })
            },
            |_, go| Expr::app(Expr::var(go), list),
        );
        d.case_maybe(Type::Int, find, Expr::Lit(0), |_, x| Expr::var(x))
    };

    let mut d1 = Dsl::new();
    let p1 = build(&mut d1, 50);
    let joined = optimize_checked(&p1, &mut d1, &OptConfig::join_points());

    let mut d2 = Dsl::new();
    let p2 = build(&mut d2, 50);
    let base = optimize_checked(&p2, &mut d2, &OptConfig::baseline());

    let mj = run(&joined, EvalMode::CallByValue, FUEL).unwrap();
    let mb = run(&base, EvalMode::CallByValue, FUEL).unwrap();
    assert_eq!(mj.value, mb.value);
    assert!(
        mj.metrics.total_allocs() <= mb.metrics.total_allocs(),
        "join points must not allocate more: {} vs {}",
        mj.metrics,
        mb.metrics
    );
}

/// Erasure (Theorem 5): produces a join-free, lint-clean, observationally
/// equivalent System F term.
#[test]
fn erasure_is_sound() {
    let mut d = Dsl::new();
    let programs: Vec<Expr> = vec![
        {
            // Simple join.
            let j = d.name("j");
            let x = d.binder("x", Type::Int);
            Expr::join1(
                JoinDef {
                    name: j.clone(),
                    ty_params: vec![],
                    params: vec![x.clone()],
                    body: Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
                },
                Expr::ite(
                    Expr::bool(true),
                    Expr::jump(&j, vec![], vec![Expr::Lit(1)], Type::Int),
                    Expr::jump(&j, vec![], vec![Expr::Lit(2)], Type::Int),
                ),
            )
        },
        {
            // Recursive join loop.
            d.joinrec_loop(
                "go",
                vec![("n", Type::Int), ("acc", Type::Int)],
                |_, go, ps| {
                    Expr::ite(
                        Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                        Expr::var(&ps[1]),
                        Expr::jump(
                            go,
                            vec![],
                            vec![
                                Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                                Expr::prim2(PrimOp::Add, Expr::var(&ps[1]), Expr::var(&ps[0])),
                            ],
                            Type::Int,
                        ),
                    )
                },
                |_, go| Expr::jump(go, vec![], vec![Expr::Lit(10), Expr::Lit(0)], Type::Int),
            )
        },
        {
            // Zero-parameter join (gets a Unit dummy).
            let j = d.name("j");
            Expr::join1(
                JoinDef {
                    name: j.clone(),
                    ty_params: vec![],
                    params: vec![],
                    body: Expr::Lit(9),
                },
                Expr::ite(
                    Expr::bool(false),
                    Expr::Lit(1),
                    Expr::jump(&j, vec![], vec![], Type::Int),
                ),
            )
        },
        {
            // Jump in non-tail position (the paper's Sec. 6 example needs
            // abort before decontifying).
            let j = d.name("j");
            let x = d.binder("x", Type::Int);
            Expr::join1(
                JoinDef {
                    name: j.clone(),
                    ty_params: vec![],
                    params: vec![x.clone()],
                    body: Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
                },
                Expr::app(
                    Expr::jump(
                        &j,
                        vec![],
                        vec![Expr::Lit(1)],
                        Type::fun(Type::Int, Type::Int),
                    ),
                    Expr::Lit(2),
                ),
            )
        },
    ];

    for p in programs {
        lint(&p, &d.data_env).unwrap_or_else(|e| panic!("input: {e}\n{p}"));
        let erased = erase(&p, &d.data_env, &mut d.supply).unwrap();
        assert!(!erased.has_join_or_jump(), "must be join-free:\n{erased}");
        lint(&erased, &d.data_env).unwrap_or_else(|e| panic!("erased ill-typed: {e}\n{erased}"));
        for mode in modes() {
            let a = run(&p, mode, FUEL).unwrap().value;
            let b = run(&erased, mode, FUEL).unwrap().value;
            assert_eq!(a, b, "{mode:?}\nbefore:\n{p}\nafter:\n{erased}");
        }
    }
}

/// `simplify` is idempotent at its fixpoint.
#[test]
fn simplify_reaches_fixpoint() {
    let mut d = Dsl::new();
    let (_, program) = null_program(&mut d);
    let opts = SimplOpts::default();
    let once = simplify(&program, &d.data_env, &mut d.supply, &opts).unwrap();
    let twice = simplify(&once, &d.data_env, &mut d.supply, &opts).unwrap();
    assert!(alpha_eq(&once, &twice), "\nonce:\n{once}\ntwice:\n{twice}");
}

/// Constant folding composes with case-of-literal.
#[test]
fn constant_folding_through_cases() {
    let mut d = Dsl::new();
    let e = Expr::case(
        Expr::prim2(PrimOp::Mul, Expr::Lit(6), Expr::Lit(7)),
        vec![
            Alt::simple(AltCon::Lit(42), Expr::Lit(1)),
            Alt::simple(AltCon::Default, Expr::Lit(0)),
        ],
    );
    let out = optimize_checked(&e, &mut d, &OptConfig::join_points());
    assert!(alpha_eq(&out, &Expr::Lit(1)), "got:\n{out}");
}

/// Sanity for the helpers: bare `contify` on a let that must convert.
#[test]
fn contify_simple_tail_function() {
    let mut d = Dsl::new();
    let f = d.binder("f", Type::fun(Type::Int, Type::Int));
    let x = d.binder("x", Type::Int);
    // let f = \x. x + 1 in case b of True -> f 1; False -> f 2
    let e = Expr::let1(
        f.clone(),
        Expr::lam(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
        ),
        Expr::ite(
            Expr::bool(true),
            Expr::app(Expr::var(&f.name), Expr::Lit(1)),
            Expr::app(Expr::var(&f.name), Expr::Lit(2)),
        ),
    );
    let out = contify(&e, &d.data_env).unwrap();
    assert!(matches!(out, Expr::Join(..)), "got:\n{out}");
    lint(&out, &d.data_env).unwrap();
    assert_eq!(run_int(&out, EvalMode::CallByName, FUEL).unwrap(), 2);
}

#[test]
fn data_env_available() {
    let env = DataEnv::prelude();
    assert!(env.datatype(&Ident::new("Bool")).is_ok());
    let _ = NameSupply::new();
}

/// Commuting-normal form (Sec. 6): the simplifier establishes it, and
/// the checker recognizes tail vs non-tail jumps correctly.
#[test]
fn commuting_normal_form_detection() {
    use crate::{is_commuting_normal, simplify_once, SimplOpts};
    let mut d = Dsl::new();
    let j = d.name("j");
    let x = d.binder("x", Type::Int);
    // Tail-shaped: join j x = x + 1 in if b then jump j 1 else 0
    let tail_shaped = Expr::join1(
        JoinDef {
            name: j.clone(),
            ty_params: vec![],
            params: vec![x.clone()],
            body: Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
        },
        Expr::ite(
            Expr::bool(true),
            Expr::jump(&j, vec![], vec![Expr::Lit(1)], Type::Int),
            Expr::Lit(0),
        ),
    );
    assert!(is_commuting_normal(&tail_shaped));

    // Non-tail: (jump j 1 (Int -> Int)) 2 — jump in function position.
    let j2 = d.name("j");
    let y = d.binder("y", Type::Int);
    let non_tail = Expr::join1(
        JoinDef {
            name: j2.clone(),
            ty_params: vec![],
            params: vec![y.clone()],
            body: Expr::prim2(PrimOp::Add, Expr::var(&y.name), Expr::Lit(1)),
        },
        Expr::app(
            Expr::jump(
                &j2,
                vec![],
                vec![Expr::Lit(1)],
                Type::fun(Type::Int, Type::Int),
            ),
            Expr::Lit(2),
        ),
    );
    assert!(!is_commuting_normal(&non_tail));

    // One simplifier round reaches commuting-normal form (Lemma 4's
    // constructive content).
    let norm = simplify_once(&non_tail, &d.data_env, &mut d.supply, &SimplOpts::default()).unwrap();
    assert!(is_commuting_normal(&norm), "not normal:\n{norm}");
    assert_eq!(run_int(&norm, EvalMode::CallByName, FUEL).unwrap(), 2);
}

/// Jump in a case scrutinee is non-tail; the simplifier aborts the case.
#[test]
fn scrutinee_jump_aborts() {
    use crate::{is_commuting_normal, simplify_once, SimplOpts};
    let mut d = Dsl::new();
    let j = d.name("j");
    let x = d.binder("x", Type::Int);
    let e = Expr::join1(
        JoinDef {
            name: j.clone(),
            ty_params: vec![],
            params: vec![x.clone()],
            body: Expr::var(&x.name),
        },
        Expr::case(
            Expr::jump(&j, vec![], vec![Expr::Lit(5)], Type::bool()),
            vec![
                Alt::simple(AltCon::Con(Ident::new("True")), Expr::Lit(1)),
                Alt::simple(AltCon::Con(Ident::new("False")), Expr::Lit(0)),
            ],
        ),
    );
    lint(&e, &d.data_env).unwrap();
    assert!(!is_commuting_normal(&e));
    let norm = simplify_once(&e, &d.data_env, &mut d.supply, &SimplOpts::default()).unwrap();
    assert!(is_commuting_normal(&norm));
    // The case was dead code (the scrutinee never returns): result is 5.
    assert_eq!(run_int(&norm, EvalMode::CallByName, FUEL).unwrap(), 5);
    assert_eq!(run_int(&e, EvalMode::CallByName, FUEL).unwrap(), 5);
}

// ---- resilient pipeline -------------------------------------------------

mod resilient {
    use super::{modes, null_program, FUEL};
    use crate::guard::RollbackReason;
    use crate::{
        optimize_resilient, optimize_with_report, OptConfig, OptError, Pass, PassOutcome, PassTap,
    };
    use fj_ast::{alpha_eq, Binder, Dsl, Expr, LetBind, Name, Type};
    use fj_eval::run;
    use std::sync::Mutex;
    use std::time::Duration;

    /// The guard's leaked-worker counter is process-wide, so tests that
    /// exercise deadlines must not overlap: a cap-saturation test running
    /// next to a plain deadline test would turn the latter's expected
    /// `DeadlineExceeded` into `GuardExhausted`.
    static DEADLINE_TESTS: Mutex<()> = Mutex::new(());

    /// A tap that panics when it reaches the pass at `index`.
    fn panic_tap(index: usize) -> PassTap {
        PassTap::new(move |ctx, res| {
            if ctx.index == index {
                panic!("test tap: deliberate panic");
            }
            res
        })
    }

    #[test]
    fn rolled_back_pass_leaves_term_alpha_equal_exact_count() {
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        let cfg = OptConfig {
            passes: vec![Pass::Simplify],
            ..OptConfig::join_points()
        }
        .with_tap(panic_tap(0));
        let (out, report) = optimize_resilient(&program, &d.data_env, &mut d.supply, &cfg).unwrap();
        assert!(alpha_eq(&out, &program), "rollback must restore the input");
        assert_eq!(report.passes.len(), 1, "exactly one pass recorded");
        let p = &report.passes[0];
        assert!(
            matches!(p.outcome, PassOutcome::RolledBack(RollbackReason::Panic(_))),
            "got {:?}",
            p.outcome
        );
        assert_eq!(p.rewrites.total(), 0, "a rolled-back pass fired nothing");
        assert_eq!(report.rolled_back().count(), 1);
        assert!(!report.all_applied());
        assert_eq!(report.census_after, report.census_before);
    }

    #[test]
    fn resilient_matches_strict_when_nothing_fails() {
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        let cfg = OptConfig::join_points().with_lint(true);
        let mut s1 = d.supply.clone();
        let mut s2 = d.supply.clone();
        let (strict, strict_report) =
            optimize_with_report(&program, &d.data_env, &mut s1, &cfg).unwrap();
        let (resil, resil_report) =
            optimize_resilient(&program, &d.data_env, &mut s2, &cfg).unwrap();
        assert!(alpha_eq(&strict, &resil));
        assert!(resil_report.all_applied());
        assert_eq!(strict_report.totals(), resil_report.totals());
        assert_eq!(strict_report.passes.len(), resil_report.passes.len());
    }

    #[test]
    fn pipeline_continues_after_midpipeline_panic() {
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        let cfg = OptConfig::join_points().with_tap(panic_tap(3));
        let (out, report) = optimize_resilient(&program, &d.data_env, &mut d.supply, &cfg).unwrap();
        assert_eq!(report.rolled_back().count(), 1);
        let bad = report.rolled_back().next().unwrap();
        assert_eq!(bad.pass, report.passes[3].pass);
        // The other passes still did their job and the output still runs.
        for mode in modes() {
            let a = run(&program, mode, FUEL).unwrap();
            let b = run(&out, mode, FUEL).unwrap();
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn growth_budget_rolls_back_a_bloating_pass() {
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        // A tap that wraps pass 0's output in hundreds of well-typed
        // `let pad_i = 1 in …` shells: lint-clean, but way past budget.
        let bloat = PassTap::new(move |ctx, res| {
            if ctx.index != 0 {
                return res;
            }
            res.map(|(mut e, rw)| {
                for i in 0..400u64 {
                    let pad = Binder::new(Name::with_id("pad", 8_000_000_000 + i), Type::Int);
                    e = Expr::Let(
                        LetBind::NonRec(pad, Expr::share(Expr::Lit(1))),
                        Expr::share(e),
                    );
                }
                (e, rw)
            })
        });
        let cfg = OptConfig::join_points()
            .with_tap(bloat)
            .with_max_growth(3.0);
        let (out, report) = optimize_resilient(&program, &d.data_env, &mut d.supply, &cfg).unwrap();
        let bad = &report.passes[0];
        assert!(
            matches!(
                bad.outcome,
                PassOutcome::RolledBack(RollbackReason::GrowthBudget { .. })
            ),
            "got {:?}",
            bad.outcome
        );
        // Later passes proceed from the un-bloated term.
        assert!(
            out.size() < 300,
            "bloat was rolled back (size {})",
            out.size()
        );
    }

    #[test]
    fn pass_budget_skips_the_rest_of_the_pipeline() {
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        let cfg = OptConfig::join_points().with_max_passes(2);
        let (_, report) = optimize_resilient(&program, &d.data_env, &mut d.supply, &cfg).unwrap();
        let total = cfg.passes.len();
        assert_eq!(report.passes.len(), total);
        assert!(report.passes[0].outcome.is_applied());
        assert!(report.passes[1].outcome.is_applied());
        for p in &report.passes[2..] {
            assert!(
                matches!(
                    p.outcome,
                    PassOutcome::RolledBack(RollbackReason::PassBudget { max_passes: 2 })
                ),
                "got {:?}",
                p.outcome
            );
        }
    }

    #[test]
    fn deadline_rolls_back_a_spinning_pass() {
        let _serial = DEADLINE_TESTS.lock().unwrap();
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        let spin = PassTap::new(move |ctx, res| {
            if ctx.index == 0 {
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            res
        });
        let cfg = OptConfig::join_points()
            .with_tap(spin)
            .with_pass_deadline(Duration::from_millis(40));
        let (out, report) = optimize_resilient(&program, &d.data_env, &mut d.supply, &cfg).unwrap();
        assert!(
            matches!(
                report.passes[0].outcome,
                PassOutcome::RolledBack(RollbackReason::DeadlineExceeded { .. })
            ),
            "got {:?}",
            report.passes[0].outcome
        );
        assert!(report.passes[1..].iter().all(|p| p.outcome.is_applied()));
        for mode in modes() {
            assert_eq!(
                run(&program, mode, FUEL).unwrap().value,
                run(&out, mode, FUEL).unwrap().value
            );
        }
    }

    /// Saturating the guard with non-cooperative spins must cap leaked
    /// workers at [`MAX_LEAKED_WORKERS`] and refuse further guarded
    /// passes with `GuardExhausted` instead of spawning more threads —
    /// and the leak must drain back to zero once the stuck jobs end.
    #[test]
    fn leaked_workers_are_capped_then_drain() {
        use crate::{leaked_guard_workers, MAX_LEAKED_WORKERS};
        let _serial = DEADLINE_TESTS.lock().unwrap();
        // An earlier deadline test's cooperatively-cancelled worker may
        // still be mid-exit; start from a settled counter.
        let settle = std::time::Instant::now() + Duration::from_secs(5);
        while leaked_guard_workers() > 0 {
            assert!(
                std::time::Instant::now() < settle,
                "leak counter dirty at start: {}",
                leaked_guard_workers()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        // A *non*-cooperative spin: ignores the cancel flag for a bounded
        // 300ms, far past the 10ms deadline, so every run leaks pass 0's
        // worker until the cap bites.
        let stubborn = PassTap::new(move |ctx, res| {
            if ctx.index == 0 {
                std::thread::sleep(Duration::from_millis(300));
            }
            res
        });
        let cfg = OptConfig::join_points()
            .with_tap(stubborn)
            .with_pass_deadline(Duration::from_millis(10));
        let mut saw_exhausted = false;
        let mut saw_leak_in_report = false;
        for _ in 0..MAX_LEAKED_WORKERS + 3 {
            let (_, report) =
                optimize_resilient(&program, &d.data_env, &mut d.supply, &cfg).unwrap();
            assert!(
                leaked_guard_workers() <= MAX_LEAKED_WORKERS,
                "cap breached: {} leaked",
                leaked_guard_workers()
            );
            assert!(report.leaked_workers <= MAX_LEAKED_WORKERS);
            saw_leak_in_report |= report.leaked_workers > 0;
            match &report.passes[0].outcome {
                PassOutcome::RolledBack(RollbackReason::DeadlineExceeded { .. }) => {}
                PassOutcome::RolledBack(RollbackReason::GuardExhausted { leaked }) => {
                    assert_eq!(*leaked, MAX_LEAKED_WORKERS);
                    saw_exhausted = true;
                }
                other => panic!("unexpected pass-0 outcome: {other:?}"),
            }
        }
        assert!(
            saw_exhausted,
            "cap never bit after {} deadline blows",
            MAX_LEAKED_WORKERS + 3
        );
        assert!(
            saw_leak_in_report,
            "PipelineReport never surfaced a non-zero leak count"
        );
        // The stubborn jobs are bounded: once they finish, the abandoned
        // workers exit and settle the counter.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while leaked_guard_workers() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "{} workers never drained",
                leaked_guard_workers()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn strict_pipeline_fails_fast_on_blown_budget() {
        let mut d = Dsl::new();
        let (_, program) = null_program(&mut d);
        let cfg = OptConfig::join_points().with_max_passes(0);
        let err = optimize_with_report(&program, &d.data_env, &mut d.supply, &cfg).unwrap_err();
        assert!(matches!(err, OptError::Budget { .. }), "got {err}");
    }
}

// ---- subtree sharing ----------------------------------------------------

/// The copy-on-write contract behind the pipeline's O(1) snapshots: a
/// pipeline that keeps nothing must hand back a term whose subtrees are
/// the *same allocations* as the input's, and a plain `clone` must be a
/// reference-count bump below the root rather than a deep copy.
mod sharing {
    use super::{modes, null_program, FUEL};
    use crate::{optimize_resilient, OptConfig, PassTap};
    use fj_ast::{alpha_eq, Expr};
    use fj_eval::run;
    use std::sync::Arc;

    /// Destructure the root lambda, returning its body `Arc`.
    fn lam_body(e: &Expr) -> &Arc<Expr> {
        match e {
            Expr::Lam(_, body) => body,
            other => panic!("expected a lambda, got {other}"),
        }
    }

    #[test]
    fn clone_shares_subtrees() {
        let mut d = fj_ast::Dsl::new();
        let (_, program) = null_program(&mut d);
        let copy = program.clone();
        assert!(
            Arc::ptr_eq(lam_body(&program), lam_body(&copy)),
            "clone must share subtree allocations, not deep-copy"
        );
    }

    #[test]
    fn full_rollback_returns_pointer_identical_subtrees() {
        let mut d = fj_ast::Dsl::new();
        let (_, program) = null_program(&mut d);
        // A tap that discards every pass's output forces a rollback at
        // every step; the pipeline must come back to the input snapshot.
        let always_panic = PassTap::new(|_, _| panic!("test tap: discard every pass"));
        let cfg = OptConfig::join_points().with_tap(always_panic);
        let (out, report) = optimize_resilient(&program, &d.data_env, &mut d.supply, &cfg).unwrap();
        assert_eq!(report.rolled_back().count(), report.passes.len());
        assert!(alpha_eq(&out, &program));
        assert!(
            Arc::ptr_eq(lam_body(&program), lam_body(&out)),
            "rollback snapshot must be the input's own subtrees, not a deep clone"
        );
        for mode in modes() {
            assert_eq!(
                run(&program, mode, FUEL).unwrap().value,
                run(&out, mode, FUEL).unwrap().value
            );
        }
    }
}
