//! Pass-level observability: rewrite-firing counters, term censuses, and
//! the structured [`PipelineReport`] returned by
//! [`optimize_with_report`](crate::optimize_with_report).
//!
//! The paper's evaluation (Sec. 7, Table 1) is entirely about *counting
//! what the optimizer did* — which rewrites fired, how many join points
//! were inferred, and what the residual program allocates. These types
//! make every pass's effect observable: each pass reports how often each
//! axiom fired ([`RewriteStats`]), what the term looked like afterwards
//! ([`Census`]), and how long the pass took.

use crate::guard::RollbackReason;
use fj_ast::Expr;
use std::fmt;
use std::time::Duration;

/// How often each rewrite fired during one pass (or one whole pipeline,
/// when summed with [`RewriteStats::merge`]).
///
/// The field names follow the paper's Fig. 4 axiom names where one
/// exists; the rest are the simplifier behaviours of Sec. 7.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// `β`/`β_τ`: a lambda (or type lambda) met its argument.
    pub beta: u64,
    /// `case`: a known constructor or literal scrutinee selected its
    /// alternative outright.
    pub known_case: u64,
    /// `casefloat`/case-of-case: a pending evaluation context was pushed
    /// into the branches of a residual `case`.
    pub case_of_case: u64,
    /// Contexts too big to copy that were shared through a fresh join
    /// point (or a `let`-bound function in baseline mode) — footnote 5's
    /// "the Simplifier regularly creates join points".
    pub shared_contexts: u64,
    /// `jfloat`: the pending context was copied into a join binding's
    /// right-hand sides.
    pub jfloat: u64,
    /// `abort`: a jump discarded its pending evaluation context.
    pub abort: u64,
    /// `inline`: a `let`-bound value was substituted at its uses.
    pub inline: u64,
    /// `jinline`: a join definition was inlined at a jump.
    pub join_inline: u64,
    /// `drop`/`jdrop`: a dead `let` or `join` binding was removed.
    pub dead_drop: u64,
    /// Constant folding of primitive operations.
    pub const_fold: u64,
    /// Contification: `let`-bound functions converted to join points
    /// (groups count once, as in Fig. 5's judgement).
    pub contified: u64,
    /// Float In: `let` bindings moved inward toward their use sites.
    pub floated_in: u64,
    /// Float Out: `let` bindings hoisted out of lambdas.
    pub floated_out: u64,
    /// CSE: occurrences replaced by an earlier equal binding.
    pub cse_hits: u64,
}

impl RewriteStats {
    /// Total rewrites fired.
    pub fn total(&self) -> u64 {
        self.beta
            + self.known_case
            + self.case_of_case
            + self.shared_contexts
            + self.jfloat
            + self.abort
            + self.inline
            + self.join_inline
            + self.dead_drop
            + self.const_fold
            + self.contified
            + self.floated_in
            + self.floated_out
            + self.cse_hits
    }

    /// Accumulate another pass's counters into this one.
    pub fn merge(&mut self, other: &RewriteStats) {
        self.beta += other.beta;
        self.known_case += other.known_case;
        self.case_of_case += other.case_of_case;
        self.shared_contexts += other.shared_contexts;
        self.jfloat += other.jfloat;
        self.abort += other.abort;
        self.inline += other.inline;
        self.join_inline += other.join_inline;
        self.dead_drop += other.dead_drop;
        self.const_fold += other.const_fold;
        self.contified += other.contified;
        self.floated_in += other.floated_in;
        self.floated_out += other.floated_out;
        self.cse_hits += other.cse_hits;
    }

    /// `(label, count)` pairs for the counters that fired, for rendering.
    pub fn nonzero(&self) -> Vec<(&'static str, u64)> {
        [
            ("beta", self.beta),
            ("known-case", self.known_case),
            ("case-of-case", self.case_of_case),
            ("shared-ctx", self.shared_contexts),
            ("jfloat", self.jfloat),
            ("abort", self.abort),
            ("inline", self.inline),
            ("jinline", self.join_inline),
            ("dead-drop", self.dead_drop),
            ("const-fold", self.const_fold),
            ("contify", self.contified),
            ("float-in", self.floated_in),
            ("float-out", self.floated_out),
            ("cse", self.cse_hits),
        ]
        .into_iter()
        .filter(|(_, n)| *n > 0)
        .collect()
    }
}

impl fmt::Display for RewriteStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fired = self.nonzero();
        if fired.is_empty() {
            return write!(f, "(no rewrites)");
        }
        for (i, (label, n)) in fired.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{label}={n}")?;
        }
        Ok(())
    }
}

/// A syntactic census of one term: the join-point shape of the program at
/// a pipeline boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Census {
    /// Term size ([`Expr::size`]).
    pub size: usize,
    /// `let` binders (counting each binder of a recursive group).
    pub lets: usize,
    /// Join definitions (counting each definition of a recursive group).
    pub joins: usize,
    /// Jumps.
    pub jumps: usize,
    /// Value lambdas.
    pub lams: usize,
    /// `case` expressions.
    pub cases: usize,
}

impl Census {
    /// Take the census of a term in a single pre-order walk (`size` is a
    /// node count, so it is tallied alongside the shape counters).
    pub fn of(e: &Expr) -> Census {
        let mut c = Census::default();
        e.walk(&mut |node| {
            c.size += 1;
            match node {
                Expr::Let(bind, _) => c.lets += bind.binders().len(),
                Expr::Join(jb, _) => c.joins += jb.defs().len(),
                Expr::Jump(..) => c.jumps += 1,
                Expr::Lam(..) => c.lams += 1,
                Expr::Case(..) => c.cases += 1,
                _ => {}
            }
        });
        c
    }
}

impl fmt::Display for Census {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "size={} lets={} joins={} jumps={} lams={} cases={}",
            self.size, self.lets, self.joins, self.jumps, self.lams, self.cases
        )
    }
}

/// Did the driver keep a pass's output, or throw it away?
///
/// Strict pipelines ([`optimize`](crate::optimize)) only ever record
/// [`PassOutcome::Applied`]: any failure aborts compilation instead. The
/// resilient pipeline ([`optimize_resilient`](crate::optimize_resilient))
/// records [`PassOutcome::RolledBack`] and continues from the pre-pass
/// term.
#[derive(Clone, Debug, Default)]
pub enum PassOutcome {
    /// The pass ran, passed its budgets (and lint), and its output became
    /// the input of the next pass.
    #[default]
    Applied,
    /// The pass failed (error, panic, lint violation, or blown budget);
    /// its output was discarded and the pipeline continued from the
    /// pre-pass term.
    RolledBack(RollbackReason),
}

impl PassOutcome {
    /// Was the pass output kept?
    pub fn is_applied(&self) -> bool {
        matches!(self, PassOutcome::Applied)
    }
}

impl fmt::Display for PassOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassOutcome::Applied => write!(f, "applied"),
            PassOutcome::RolledBack(reason) => write!(f, "rolled back: {reason}"),
        }
    }
}

/// What one pass did: its name, rewrite counters, the census of its
/// output, and wall-clock time.
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Pass name (as in [`Pass::name`](crate::Pass)).
    pub pass: &'static str,
    /// Rewrites fired during the pass. Zeroed when the pass was rolled
    /// back (discarded rewrites never happened as far as the pipeline is
    /// concerned).
    pub rewrites: RewriteStats,
    /// Census of the pass's output term — the *pre-pass* term when the
    /// pass was rolled back.
    pub census_after: Census,
    /// Wall-clock time spent in the pass.
    pub wall: Duration,
    /// Whether the output was kept or rolled back.
    pub outcome: PassOutcome,
}

/// Everything the pipeline did, pass by pass.
#[derive(Clone, Debug, Default)]
pub struct PipelineReport {
    /// Census of the input term.
    pub census_before: Census,
    /// Per-pass statistics, in execution order.
    pub passes: Vec<PassStats>,
    /// Census of the final term (equals the last pass's `census_after`
    /// when any pass ran).
    pub census_after: Census,
    /// Total wall-clock time across passes.
    pub wall: Duration,
    /// Abandoned deadline-guard workers still alive when the pipeline
    /// finished (process-wide; see
    /// [`leaked_guard_workers`](crate::leaked_guard_workers)). Non-zero
    /// means some earlier pass blew its deadline and its thread has not
    /// yet noticed the cancellation.
    pub leaked_workers: usize,
}

impl PipelineReport {
    /// Sum of every pass's rewrite counters.
    pub fn totals(&self) -> RewriteStats {
        let mut t = RewriteStats::default();
        for p in &self.passes {
            t.merge(&p.rewrites);
        }
        t
    }

    /// Total rewrites fired by passes with this name (e.g. `"simplify"`).
    pub fn rewrites_for(&self, pass: &str) -> u64 {
        self.passes
            .iter()
            .filter(|p| p.pass == pass)
            .map(|p| p.rewrites.total())
            .sum()
    }

    /// The passes whose output was discarded, in execution order.
    pub fn rolled_back(&self) -> impl Iterator<Item = &PassStats> {
        self.passes.iter().filter(|p| !p.outcome.is_applied())
    }

    /// Did every pass apply cleanly?
    pub fn all_applied(&self) -> bool {
        self.passes.iter().all(|p| p.outcome.is_applied())
    }
}

impl fmt::Display for PipelineReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "input:  {}", self.census_before)?;
        for p in &self.passes {
            match &p.outcome {
                PassOutcome::Applied => writeln!(
                    f,
                    "{:<10} {:>7.1?}  {}  [{}]",
                    p.pass, p.wall, p.census_after, p.rewrites
                )?,
                PassOutcome::RolledBack(reason) => writeln!(
                    f,
                    "{:<10} {:>7.1?}  {}  [{}]",
                    p.pass, p.wall, p.census_after, reason
                )?,
            }
        }
        write!(f, "output: {}  (total {:?})", self.census_after, self.wall)?;
        if self.leaked_workers > 0 {
            write!(f, "\nleaked guard workers: {}", self.leaked_workers)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{Dsl, JoinDef, PrimOp, Type};

    #[test]
    fn census_counts_shapes() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let j = d.name("j");
        let p = d.binder("p", Type::Int);
        let e = Expr::let1(
            x.clone(),
            Expr::Lit(1),
            Expr::join1(
                JoinDef {
                    name: j.clone(),
                    ty_params: vec![],
                    params: vec![p.clone()],
                    body: Expr::prim2(PrimOp::Add, Expr::var(&p.name), Expr::var(&x.name)),
                },
                Expr::jump(&j, vec![], vec![Expr::Lit(2)], Type::Int),
            ),
        );
        let c = Census::of(&e);
        assert_eq!(c.lets, 1);
        assert_eq!(c.joins, 1);
        assert_eq!(c.jumps, 1);
        assert_eq!(c.lams, 0);
        assert_eq!(c.cases, 0);
        assert_eq!(c.size, e.size());
    }

    #[test]
    fn merge_and_total() {
        let mut a = RewriteStats {
            beta: 2,
            contified: 1,
            ..RewriteStats::default()
        };
        let b = RewriteStats {
            beta: 3,
            cse_hits: 4,
            ..RewriteStats::default()
        };
        a.merge(&b);
        assert_eq!(a.beta, 5);
        assert_eq!(a.total(), 10);
        assert_eq!(a.nonzero().len(), 3);
    }
}
