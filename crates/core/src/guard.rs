//! Pass guards: panic isolation, wall-clock deadlines, and the fault-
//! injection tap behind [`optimize_resilient`](crate::optimize_resilient).
//!
//! The paper uses Core Lint "forensically" (Sec. 4.4): a pass that breaks
//! the jump-in-tail-position discipline is caught by the checker after the
//! fact. This module extends that discipline from *detection* to
//! *containment*: a pass runs inside [`run_pass_guarded`], which catches
//! panics, enforces an optional per-pass deadline, and feeds the pass
//! output through an optional [`PassTap`] (the seam the testkit's
//! `Saboteur` uses to inject faults). The driver in `pipeline.rs` decides
//! what to do with a failure — abort (strict mode) or roll back to the
//! pre-pass term and keep going (resilient mode).
//!
//! Deadlines are implemented by running the pass on a fresh thread and
//! abandoning it on timeout (terms are `Send`: names intern per thread via
//! `Arc<str>`). The abandoned thread keeps running, so long-running
//! cooperative code (like the Saboteur's spin mode) should poll
//! [`PassCtx::cancelled`] and bail out once the driver has given up on it.

use crate::pipeline::Pass;
use crate::simplify::SimplOpts;
use crate::stats::RewriteStats;
use crate::BudgetKind;
use crate::{apply_pass, OptError};
use fj_ast::{DataEnv, Expr, NameSupply};
use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Once};
use std::time::Duration;

/// Cooperative cancellation flag shared between the pipeline driver and a
/// pass running on a guard thread. Set when the driver abandons the pass
/// (deadline exceeded); long-running tap code should poll it and return.
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Has the driver given up on this pass?
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    fn set(&self) {
        self.0.store(true, Ordering::Relaxed);
    }
}

/// What a [`PassTap`] sees: which pass just ran, where it sits in the
/// pipeline, and the cancellation flag for cooperative bail-out.
pub struct PassCtx {
    /// Pass name (as in [`Pass::name`]).
    pub pass: &'static str,
    /// Zero-based position of the pass in the pipeline.
    pub index: usize,
    cancel: CancelFlag,
}

impl PassCtx {
    /// Has the driver abandoned this pass (deadline exceeded)? Long-running
    /// tap code should poll this and return promptly once it is set.
    pub fn cancelled(&self) -> bool {
        self.cancel.is_set()
    }
}

/// The raw result a pass hands to a tap: the output term and rewrite
/// counters, or the pass's error.
pub type PassResult = Result<(Expr, RewriteStats), OptError>;

/// The function type a [`PassTap`] wraps.
type TapFn = dyn Fn(&PassCtx, PassResult) -> PassResult + Send + Sync;

/// A test seam interposed on every pass output, used by the testkit's
/// `Saboteur` to corrupt terms, panic, or spin. Production pipelines leave
/// [`OptConfig::tap`](crate::OptConfig) unset.
#[derive(Clone)]
pub struct PassTap(Arc<TapFn>);

impl PassTap {
    /// Wrap a function as a tap.
    pub fn new(f: impl Fn(&PassCtx, PassResult) -> PassResult + Send + Sync + 'static) -> Self {
        PassTap(Arc::new(f))
    }

    fn call(&self, ctx: &PassCtx, r: PassResult) -> PassResult {
        (self.0)(ctx, r)
    }
}

impl fmt::Debug for PassTap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PassTap(..)")
    }
}

/// Why the resilient driver discarded a pass's output (or refused to run
/// the pass at all). Carried in
/// [`PassOutcome::RolledBack`](crate::PassOutcome).
#[derive(Clone, Debug)]
pub enum RollbackReason {
    /// The pass itself returned an error.
    PassError(Box<OptError>),
    /// Lint rejected the pass output (always
    /// [`OptError::LintAfterPass`]).
    LintViolation(Box<OptError>),
    /// The pass (or an injected fault) panicked; the payload message.
    Panic(String),
    /// The pass blew its wall-clock deadline and was abandoned.
    DeadlineExceeded {
        /// The configured per-pass deadline.
        limit: Duration,
    },
    /// The output term grew past the configured size budget.
    GrowthBudget {
        /// Term size before the pass.
        before: usize,
        /// Term size after the pass.
        after: usize,
        /// The configured growth factor
        /// ([`OptConfig::max_growth`](crate::OptConfig)).
        limit: f64,
    },
    /// The pipeline's total pass budget was already spent; the pass was
    /// skipped without running.
    PassBudget {
        /// The configured budget
        /// ([`OptConfig::max_passes`](crate::OptConfig)).
        max_passes: usize,
    },
    /// The process has accumulated [`MAX_LEAKED_WORKERS`] abandoned guard
    /// workers that are still grinding on timed-out passes, so the pass
    /// was refused rather than allowed to spawn yet another thread.
    GuardExhausted {
        /// Abandoned workers still alive when the pass was refused.
        leaked: usize,
    },
}

impl RollbackReason {
    /// Short machine-readable tag (`panic`, `deadline`, …) for rendering.
    pub fn tag(&self) -> &'static str {
        match self {
            RollbackReason::PassError(_) => "pass-error",
            RollbackReason::LintViolation(_) => "lint",
            RollbackReason::Panic(_) => "panic",
            RollbackReason::DeadlineExceeded { .. } => "deadline",
            RollbackReason::GrowthBudget { .. } => "growth",
            RollbackReason::PassBudget { .. } => "pass-budget",
            RollbackReason::GuardExhausted { .. } => "guard-exhausted",
        }
    }

    /// Convert into the error a fail-fast pipeline reports for this pass.
    pub(crate) fn into_opt_error(self, pass: &'static str) -> OptError {
        match self {
            RollbackReason::PassError(e) | RollbackReason::LintViolation(e) => *e,
            RollbackReason::Panic(msg) => {
                OptError::Internal(format!("pass `{pass}` panicked: {msg}"))
            }
            RollbackReason::DeadlineExceeded { limit } => OptError::Budget {
                pass,
                kind: BudgetKind::Deadline,
                reason: format!("exceeded per-pass deadline of {limit:?}"),
            },
            RollbackReason::GrowthBudget {
                before,
                after,
                limit,
            } => OptError::Budget {
                pass,
                kind: BudgetKind::Growth,
                reason: format!(
                    "output grew {before} -> {after} nodes, past the {limit}x growth budget"
                ),
            },
            RollbackReason::PassBudget { max_passes } => OptError::Budget {
                pass,
                kind: BudgetKind::Passes,
                reason: format!("pipeline budget of {max_passes} passes already spent"),
            },
            RollbackReason::GuardExhausted { leaked } => OptError::Budget {
                pass,
                kind: BudgetKind::Workers,
                reason: format!(
                    "{leaked} abandoned guard workers still running \
                     (cap {MAX_LEAKED_WORKERS}); refusing to spawn another"
                ),
            },
        }
    }
}

impl fmt::Display for RollbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollbackReason::PassError(e) => write!(f, "pass error: {e}"),
            RollbackReason::LintViolation(e) => match e.as_ref() {
                // Elide the term dump: rollback lines are one-liners.
                OptError::LintAfterPass { error, .. } => write!(f, "lint: {error}"),
                other => write!(f, "lint: {other}"),
            },
            RollbackReason::Panic(msg) => write!(f, "panic: {msg}"),
            RollbackReason::DeadlineExceeded { limit } => {
                write!(f, "deadline exceeded ({limit:?})")
            }
            RollbackReason::GrowthBudget {
                before,
                after,
                limit,
            } => write!(
                f,
                "growth budget: {before} -> {after} nodes (limit {limit}x)"
            ),
            RollbackReason::PassBudget { max_passes } => {
                write!(f, "pass budget spent ({max_passes} passes)")
            }
            RollbackReason::GuardExhausted { leaked } => {
                write!(
                    f,
                    "guard workers exhausted ({leaked} leaked, cap {MAX_LEAKED_WORKERS})"
                )
            }
        }
    }
}

thread_local! {
    static SUPPRESS_PANIC_REPORT: Cell<bool> = const { Cell::new(false) };
}

/// A unit of work shipped to the deadline worker thread.
type Job = Box<dyn FnOnce() + Send>;

/// Abandoned guard workers (deadline timeouts) whose threads are still
/// alive: incremented when a timeout poisons a worker slot, decremented
/// by the worker thread itself once its stuck job finally returns and it
/// exits. A pass that never polls [`CancelFlag`] pins this counter up
/// forever — which is exactly why [`MAX_LEAKED_WORKERS`] exists.
static LEAKED_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Cap on simultaneously-leaked guard workers, process-wide. Once this
/// many abandoned threads are still running, deadline-guarded passes are
/// *refused* ([`RollbackReason::GuardExhausted`]) instead of being
/// allowed to spawn an unbounded pile of runaway threads. Rollback costs
/// one optimization opportunity; unbounded thread growth costs the
/// process.
pub const MAX_LEAKED_WORKERS: usize = 8;

/// How many abandoned guard workers are still alive right now
/// (process-wide). Exposed in
/// [`PipelineReport::leaked_workers`](crate::PipelineReport) and the
/// `fj serve` `stats` response; the saboteur `inject-spin` suite asserts
/// it stays below [`MAX_LEAKED_WORKERS`] and drains back to zero once
/// cooperative spins notice their cancel flag.
pub fn leaked_guard_workers() -> usize {
    LEAKED_WORKERS.load(Ordering::SeqCst)
}

/// A long-lived worker thread that runs deadline-guarded passes, reused
/// across passes and pipelines on the same driver thread. Spawning a
/// thread per guarded pass costs tens of microseconds each; a pipeline
/// with a deadline runs a dozen passes per term and thousands of terms per
/// differential suite, so the guard keeps one worker alive and feeds it
/// jobs over a channel instead.
///
/// On timeout the driver *abandons* the worker mid-job (the job keeps
/// running; cooperative code polls [`CancelFlag`]) and the slot is
/// poisoned: the next deadline-guarded pass spawns a fresh worker, and the
/// abandoned one exits on its own once its stuck job finishes and the
/// job channel reports disconnect. Each abandonment is counted in
/// [`LEAKED_WORKERS`] until the thread actually exits.
struct DeadlineWorker {
    jobs: mpsc::Sender<Job>,
    /// Set by [`poison_worker`] when the driver walks away; the worker
    /// thread reads it on exit to settle the leak counter.
    abandoned: Arc<AtomicBool>,
}

/// Decrements [`LEAKED_WORKERS`] when an abandoned worker thread finally
/// exits — a drop guard so the decrement happens even if the stuck job
/// panics on its way out.
struct LeakSettler(Arc<AtomicBool>);

impl Drop for LeakSettler {
    fn drop(&mut self) {
        if self.0.load(Ordering::SeqCst) {
            LEAKED_WORKERS.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

impl DeadlineWorker {
    fn spawn() -> Option<DeadlineWorker> {
        let (jobs, inbox) = mpsc::channel::<Job>();
        let abandoned = Arc::new(AtomicBool::new(false));
        let settler = LeakSettler(Arc::clone(&abandoned));
        std::thread::Builder::new()
            .name("fj-guard-worker".into())
            .spawn(move || {
                let _settler = settler;
                while let Ok(job) = inbox.recv() {
                    job();
                }
            })
            .ok()
            .map(|_| DeadlineWorker { jobs, abandoned })
    }
}

thread_local! {
    static WORKER: Cell<Option<DeadlineWorker>> = const { Cell::new(None) };
}

/// Outcome of trying to hand a job to this thread's deadline worker.
enum Submit {
    /// The job is on a worker's queue.
    Accepted,
    /// No worker thread could be spawned at all (resource exhaustion at
    /// the OS level); the caller runs the pass inline, un-timed.
    NoThread,
    /// The leaked-worker cap is reached; the caller must refuse the pass.
    CapReached {
        /// The leak count observed at refusal time.
        leaked: usize,
    },
}

/// Hand `job` to this thread's deadline worker, (re)spawning it if the
/// slot is empty or the resident worker has died. Spawning a replacement
/// is refused while [`MAX_LEAKED_WORKERS`] abandoned workers are still
/// running — reusing a healthy resident worker is always allowed.
fn submit_job(job: Job) -> Submit {
    WORKER.with(|slot| {
        if let Some(worker) = slot.take() {
            match worker.jobs.send(job) {
                Ok(()) => {
                    slot.set(Some(worker));
                    return Submit::Accepted;
                }
                // The worker died (its receiver is gone): fall through and
                // respawn with the job we got back.
                Err(mpsc::SendError(returned)) => {
                    return spawn_and_submit(slot, returned);
                }
            }
        }
        spawn_and_submit(slot, job)
    })
}

/// Spawn a fresh worker for `job`, honouring the leak cap.
fn spawn_and_submit(slot: &Cell<Option<DeadlineWorker>>, job: Job) -> Submit {
    let leaked = leaked_guard_workers();
    if leaked >= MAX_LEAKED_WORKERS {
        return Submit::CapReached { leaked };
    }
    let Some(fresh) = DeadlineWorker::spawn() else {
        return Submit::NoThread;
    };
    if fresh.jobs.send(job).is_ok() {
        slot.set(Some(fresh));
        Submit::Accepted
    } else {
        Submit::NoThread
    }
}

/// Poison this thread's worker slot after a timeout: the resident worker
/// is still grinding on the abandoned job, so the next guarded pass must
/// not queue behind it. Dropping the sender lets the abandoned worker
/// exit once it finishes; until then it is accounted in
/// [`LEAKED_WORKERS`].
fn poison_worker() {
    WORKER.with(|slot| {
        if let Some(worker) = slot.take() {
            // Order matters: mark-then-count. The worker only settles the
            // counter after observing `abandoned == true`, and it cannot
            // observe it before this store; the increment below therefore
            // cannot be missed or double-settled.
            worker.abandoned.store(true, Ordering::SeqCst);
            LEAKED_WORKERS.fetch_add(1, Ordering::SeqCst);
        }
    });
}

/// Install (once, process-wide) a panic hook that stays silent while a
/// guarded pass is running on the current thread and delegates to the
/// previous hook otherwise. Without this, every injected panic in the
/// fault-injection suites would spray a backtrace onto test stderr.
pub(crate) fn install_quiet_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_REPORT.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
}

/// Run `f` with panic *reports* suppressed on this thread: a panic still
/// unwinds (callers pair this with `catch_unwind`), but the process-wide
/// hook stays silent for it, so expected faults — injected saboteur
/// panics, chaos-harness request panics — don't spray backtraces onto
/// stderr. Panics on other threads report normally.
pub fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    install_quiet_panic_hook();
    let _quiet = Quiet::on();
    f()
}

/// RAII guard for the thread-local panic-report suppression flag.
pub(crate) struct Quiet(bool);

impl Quiet {
    pub(crate) fn on() -> Quiet {
        Quiet(SUPPRESS_PANIC_REPORT.with(|s| s.replace(true)))
    }
}

impl Drop for Quiet {
    fn drop(&mut self) {
        SUPPRESS_PANIC_REPORT.with(|s| s.set(self.0));
    }
}

/// The human-readable message inside a caught panic payload (the
/// `&str`/`String` cases `panic!` produces; anything else gets a stub).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_tapped(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    pass: Pass,
    simpl: &SimplOpts,
    ctx: &PassCtx,
    tap: Option<&PassTap>,
) -> Result<(Expr, RewriteStats, bool), OptError> {
    let raw = apply_pass(e, data_env, supply, pass, simpl);
    match tap {
        // A tap may rewrite the output arbitrarily, so the pass's own
        // no-change witness no longer holds: force `changed` so the driver
        // never skips lint (or anything else) on tapped output.
        Some(t) => t
            .call(ctx, raw.map(|(out, rw, _)| (out, rw)))
            .map(|(out, rw)| (out, rw, true)),
        None => raw,
    }
}

/// Run one pass under the full guard: `catch_unwind` panic isolation and,
/// when `deadline` is set, a watchdog that abandons the pass after the
/// allotted wall-clock time. On success the name supply is advanced past
/// any names the pass drew; on timeout the supply is left untouched (the
/// abandoned thread's draws are simply discarded — names are never reused
/// because the abandoned output is dropped wholesale).
#[allow(clippy::too_many_arguments)] // internal driver seam, not public API
pub(crate) fn run_pass_guarded(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    pass: Pass,
    simpl: &SimplOpts,
    index: usize,
    deadline: Option<Duration>,
    tap: Option<&PassTap>,
) -> Result<(Expr, RewriteStats, bool), RollbackReason> {
    install_quiet_panic_hook();
    match deadline {
        None => {
            let ctx = PassCtx {
                pass: pass.name(),
                index,
                cancel: CancelFlag::default(),
            };
            let caught = {
                let _quiet = Quiet::on();
                panic::catch_unwind(AssertUnwindSafe(|| {
                    run_tapped(e, data_env, supply, pass, simpl, &ctx, tap)
                }))
            };
            match caught {
                Ok(Ok(out)) => Ok(out),
                Ok(Err(err)) => Err(RollbackReason::PassError(Box::new(err))),
                Err(payload) => Err(RollbackReason::Panic(panic_message(payload))),
            }
        }
        Some(limit) => {
            let (tx, rx) = mpsc::channel();
            let cancel = CancelFlag::default();
            let ctx = PassCtx {
                pass: pass.name(),
                index,
                cancel: cancel.clone(),
            };
            let (e2, env2, mut supply2, simpl2, tap2) = (
                e.clone(),
                data_env.clone(),
                supply.clone(),
                simpl.clone(),
                tap.cloned(),
            );
            let job: Job = Box::new(move || {
                let caught = {
                    let _quiet = Quiet::on();
                    panic::catch_unwind(AssertUnwindSafe(|| {
                        run_tapped(&e2, &env2, &mut supply2, pass, &simpl2, &ctx, tap2.as_ref())
                    }))
                };
                // The receiver may be gone (deadline hit): ignore.
                let _ = tx.send((caught, supply2));
            });
            match submit_job(job) {
                Submit::Accepted => {}
                Submit::CapReached { leaked } => {
                    // Too many runaway threads already. Running inline is
                    // not an option either (an un-cancellable spin would
                    // hang the driver itself), so refuse the pass.
                    return Err(RollbackReason::GuardExhausted { leaked });
                }
                Submit::NoThread => {
                    // No worker thread available at all: run inline,
                    // un-timed.
                    return run_pass_guarded(e, data_env, supply, pass, simpl, index, None, tap);
                }
            }
            match rx.recv_timeout(limit) {
                Ok((caught, supply_after)) => {
                    *supply = supply_after;
                    match caught {
                        Ok(Ok(out)) => Ok(out),
                        Ok(Err(err)) => Err(RollbackReason::PassError(Box::new(err))),
                        Err(payload) => Err(RollbackReason::Panic(panic_message(payload))),
                    }
                }
                Err(_) => {
                    cancel.set();
                    poison_worker();
                    Err(RollbackReason::DeadlineExceeded { limit })
                }
            }
        }
    }
}
