//! # fj-core — the optimizer from "Compiling without continuations"
//!
//! The paper's primary contribution, as a library:
//!
//! * [`axioms`] — the equational theory of Fig. 4, one rewrite at a time;
//! * [`occur`] — the occurrence analysis feeding inlining decisions;
//! * [`simplify`] — a GHC-style Simplifier threading a reified evaluation
//!   context, implementing case-of-case, inlining, and the two new
//!   behaviours the paper adds for join points: **`jfloat`** (copy the
//!   context into a join's right-hand side) and **`abort`** (discard the
//!   context at a jump);
//! * [`contify`](fn@contify) — Fig. 5's inference of join points from
//!   tail-called `let` bindings;
//! * [`float_in`](fn@float_in) / [`float_out`](fn@float_out) — the
//!   join-point-preserving floating passes of Sec. 7;
//! * [`erase`](fn@erase) — Theorem 5's erasure back to System F;
//! * [`cse`](fn@cse) — common-subexpression elimination, the Sec. 8
//!   "easy in direct style, hard in CPS" example, made executable;
//! * pass orchestration ([`optimize`]) with the two experimental presets:
//!   [`OptConfig::join_points`] (the paper) and [`OptConfig::baseline`]
//!   (GHC before the paper).
//!
//! ## Example: the `case`-of-`case` cascade from Sec. 2
//!
//! ```
//! use fj_ast::{Dsl, Expr, Type};
//! use fj_core::{optimize, OptConfig};
//!
//! let mut dsl = Dsl::new();
//! // null as = case (case as of { Nil -> Nothing; Cons p _ -> Just p })
//! //           of { Nothing -> True; Just _ -> False }
//! let as_ = dsl.binder("as", dsl.list_ty(Type::Int));
//! let nil_rhs = dsl.nothing(Type::Int);
//! let inner = dsl.case_list(
//!     Type::Int,
//!     Expr::var(&as_.name),
//!     nil_rhs,
//!     |d, h, _| d.just(Type::Int, Expr::var(h)),
//! );
//! let outer = dsl.case_maybe(Type::Int, inner, Expr::bool(true), |_, _| {
//!     Expr::bool(false)
//! });
//! let program = Expr::lam(as_, outer);
//!
//! let mut supply = dsl.supply;
//! let optimized = optimize(
//!     &program,
//!     &dsl.data_env,
//!     &mut supply,
//!     &OptConfig::join_points(),
//! )?;
//! // The Nothing/Just shuffle is gone: one case, straight to True/False.
//! assert!(optimized.size() < program.size());
//! # Ok::<(), fj_core::OptError>(())
//! ```

#![warn(missing_docs)]

pub mod axioms;
pub mod cache;
mod contify;
mod cse;
mod erase;
mod float_in;
mod float_out;
pub mod guard;
pub mod occur;
pub mod simplify;
pub mod stats;

mod par;
mod pipeline;

#[cfg(test)]
mod tests;

pub use cache::{
    optimize_cached, CacheKey, CacheStats, CacheStore, DiskLoad, OptCache, StoredEntry,
    DEFAULT_CACHE_BYTES, DEFAULT_SHARDS,
};
pub use contify::{contify, contify_counting};
pub use cse::{cse, CseOutcome};
pub use erase::{erase, is_commuting_normal};
pub use float_in::{float_in, float_in_counting};
pub use float_out::{float_out, float_out_counting};
pub use guard::{
    leaked_guard_workers, panic_message, quiet_panics, PassCtx, PassResult, PassTap,
    RollbackReason, MAX_LEAKED_WORKERS,
};
pub use par::{optimize_many, par_map, par_threads, BoundedQueue};
pub use pipeline::{
    apply_pass, optimize, optimize_resilient, optimize_with_report, optimize_with_stats, OptConfig,
    OptStats, Pass,
};
pub use simplify::{simplify, simplify_once, simplify_once_stats, simplify_stats, SimplOpts};
pub use stats::{Census, PassOutcome, PassStats, PipelineReport, RewriteStats};

use fj_check::LintError;
use std::fmt;

/// Why an optimizer pass failed.
#[derive(Clone, Debug)]
pub enum OptError {
    /// Type reconstruction failed (the input was ill-typed).
    Type(LintError),
    /// A pass produced ill-typed output; the pass name, Lint's complaint,
    /// and a pretty-printed dump of the offending term (the paper's
    /// "forensic" workflow for catching join-destroying passes).
    LintAfterPass {
        /// The offending pass.
        pass: &'static str,
        /// What Lint found.
        error: Box<LintError>,
        /// Pretty-printed output of the pass.
        dump: String,
    },
    /// A pass blew a configured budget (per-pass deadline, growth factor,
    /// or total pass count) in a fail-fast pipeline. The resilient
    /// pipeline records the same condition as a rollback instead.
    Budget {
        /// The offending pass.
        pass: &'static str,
        /// Which budget family was breached.
        kind: BudgetKind,
        /// Which budget, and by how much.
        reason: String,
    },
    /// An internal invariant was broken.
    Internal(String),
}

/// Which budget an [`OptError::Budget`] breached, structured so drivers
/// can classify without parsing the reason string. A growth breach is the
/// optimizer *refusing a term* (the CLI's exit-code family 4); the
/// wall-clock and pass-count budgets are resource exhaustion (family 5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// The per-pass wall-clock deadline (`OptConfig::pass_deadline`).
    Deadline,
    /// The term-size growth factor (`OptConfig::max_growth`).
    Growth,
    /// The executed-pass count (`OptConfig::max_passes`).
    Passes,
    /// The abandoned guard-worker cap (`MAX_LEAKED_WORKERS`).
    Workers,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Type(e) => write!(f, "ill-typed input: {e}"),
            OptError::LintAfterPass { pass, error, dump } => {
                write!(
                    f,
                    "pass `{pass}` broke typing: {error}\n--- dump ---\n{dump}"
                )
            }
            OptError::Budget { pass, reason, .. } => {
                write!(f, "pass `{pass}` blew its budget: {reason}")
            }
            OptError::Internal(msg) => write!(f, "internal optimizer error: {msg}"),
        }
    }
}

impl std::error::Error for OptError {}

impl From<LintError> for OptError {
    fn from(e: LintError) -> Self {
        OptError::Type(e)
    }
}
