//! The Float In pass: move `let` bindings inward, toward their use sites.
//!
//! This is the `float` axiom applied right-to-left. Its job in the join
//! story (paper Sec. 4) is to turn
//!
//! ```text
//! let f x = rhs in E[… f y … f z …]
//! ```
//!
//! into `E[let f x = rhs in … f y … f z …]`, after which the calls to `f`
//! are tail calls and *contification applies* — the pipeline then matches
//! Moby's local CPS conversion "in stages".
//!
//! Per the paper's Sec. 7 notes, the pass:
//!
//! * never moves a binding **into a lambda** (that would duplicate work
//!   under call-by-name);
//! * never touches `join` bindings, and never pushes a `let` into a
//!   position that would **un-saturate** a jump or call;
//! * only sinks into a `case` branch when exactly one branch uses the
//!   binding (sinking into several duplicates code).

use fj_ast::{mentions_any, Alt, Binder, Expr, LetBind, Name};

/// Apply Float In over a whole term.
pub fn float_in(e: &Expr) -> Expr {
    float_in_counting(e).0
}

/// As [`float_in`], also reporting how many `let` bindings actually moved
/// inward (each sinking step counts once, so a binding that travels past
/// two constructs counts twice — it is a rewrite-firing count, matching
/// the other counters of [`crate::RewriteStats`]).
pub fn float_in_counting(e: &Expr) -> (Expr, u64) {
    let mut moved = 0u64;
    let out = go(e, &mut moved);
    (out, moved)
}

fn go(e: &Expr, moved: &mut u64) -> Expr {
    match e {
        Expr::Var(_) | Expr::Lit(_) => e.clone(),
        Expr::Prim(op, args) => Expr::Prim(*op, args.iter().map(|a| go(a, moved)).collect()),
        Expr::Con(c, tys, args) => Expr::Con(
            c.clone(),
            tys.clone(),
            args.iter().map(|a| go(a, moved)).collect(),
        ),
        Expr::Lam(b, body) => Expr::lam(b.clone(), go(body, moved)),
        Expr::TyLam(a, body) => Expr::ty_lam(a.clone(), go(body, moved)),
        Expr::App(f, a) => Expr::app(go(f, moved), go(a, moved)),
        Expr::TyApp(f, t) => Expr::ty_app(go(f, moved), t.clone()),
        Expr::Case(s, alts) => Expr::case(
            go(s, moved),
            alts.iter()
                .map(|a| Alt {
                    con: a.con.clone(),
                    binders: a.binders.clone(),
                    rhs: go(&a.rhs, moved),
                })
                .collect(),
        ),
        Expr::Join(jb, body) => {
            let mut jb2 = jb.clone();
            for d in jb2.defs_mut() {
                d.body = go(&d.body, moved);
            }
            Expr::Join(jb2, Expr::share(go(body, moved)))
        }
        Expr::Jump(j, tys, args, res) => Expr::Jump(
            j.clone(),
            tys.clone(),
            args.iter().map(|a| go(a, moved)).collect(),
            res.clone(),
        ),
        Expr::Let(bind, body) => match bind {
            LetBind::NonRec(b, rhs) => {
                let rhs2 = go(rhs, moved);
                let body2 = go(body, moved);
                sink(b.clone(), rhs2, body2, moved)
            }
            LetBind::Rec(binds) => {
                let binds2: Vec<(Binder, Expr)> = binds
                    .iter()
                    .map(|(b, rhs)| (b.clone(), go(rhs, moved)))
                    .collect();
                let body2 = go(body, moved);
                sink_rec(binds2, body2, moved)
            }
        },
    }
}

fn uses(e: &Expr, names: &[&Binder]) -> bool {
    // Short-circuiting occurrence scan — sound under the optimizer's
    // globally-unique-binders invariant (see `mentions_any`); no
    // free-variable set is built per query.
    let names: Vec<Name> = names.iter().map(|b| b.name.clone()).collect();
    mentions_any(e, &names)
}

/// Push `let b = rhs` as deep into `body` as safely possible.
fn sink(b: Binder, rhs: Expr, body: Expr, moved: &mut u64) -> Expr {
    let names = [&b];
    match body {
        // case e of alts: sink into the scrutinee, or into the single
        // branch that uses the binding.
        Expr::Case(s, alts) => {
            let in_scrut = uses(&s, &names);
            let using: Vec<usize> = alts
                .iter()
                .enumerate()
                .filter(|(_, a)| uses(&a.rhs, &names))
                .map(|(i, _)| i)
                .collect();
            if in_scrut && using.is_empty() {
                *moved += 1;
                return Expr::case(sink(b, rhs, Expr::unshare(s), moved), alts);
            }
            if !in_scrut && using.len() == 1 {
                let target = using[0];
                *moved += 1;
                let alts2: Vec<Alt> = alts
                    .into_iter()
                    .enumerate()
                    .map(|(i, a)| {
                        if i == target {
                            Alt {
                                con: a.con.clone(),
                                binders: a.binders.clone(),
                                rhs: sink(b.clone(), rhs.clone(), a.rhs, moved),
                            }
                        } else {
                            a
                        }
                    })
                    .collect();
                return Expr::case(Expr::unshare(s), alts2);
            }
            Expr::let1(b, rhs, Expr::Case(s, alts))
        }
        // let x = r in body: sink past it when r doesn't use b — but only
        // when the binding keeps travelling below. Swapping two adjacent
        // independent bindings is not progress, and committing the swap
        // unconditionally would flip their order on every pass (the
        // pipeline would never observe a Float In fixpoint).
        Expr::Let(bind2, body2) => {
            let rhs_uses = bind2.pairs().iter().any(|(_, r)| uses(r, &names));
            if !rhs_uses {
                let before = *moved;
                let sunk = sink(b.clone(), rhs.clone(), (*body2).clone(), moved);
                if *moved > before {
                    *moved += 1;
                    return Expr::Let(bind2, Expr::share(sunk));
                }
            }
            Expr::let1(b, rhs, Expr::Let(bind2, body2))
        }
        // join j … = d in body: sink past the join into its body when the
        // binding isn't used by any definition. Never sink INTO a join
        // definition: a join RHS runs once per jump, so moving work there
        // duplicates it (the same reason we never sink into lambdas).
        Expr::Join(jb, body2) => {
            let defs_use = jb.defs().iter().any(|d| uses(&d.body, &names));
            if !defs_use && uses(&body2, &names) {
                *moved += 1;
                return Expr::Join(jb, Expr::share(sink(b, rhs, Expr::unshare(body2), moved)));
            }
            Expr::let1(b, rhs, Expr::Join(jb, body2))
        }
        // f a: sink into the function part (an evaluation-context hole).
        // Never into the argument (sharing) and never in a way that could
        // separate a function from its arguments (un-saturation).
        Expr::App(f, a) => {
            if uses(&f, &names) && !uses(&a, &names) && !matches!(&*f, Expr::Var(_)) {
                *moved += 1;
                Expr::app(sink(b, rhs, Expr::unshare(f), moved), Expr::unshare(a))
            } else {
                Expr::let1(b, rhs, Expr::App(f, a))
            }
        }
        other => Expr::let1(b, rhs, other),
    }
}

/// Push a recursive group inward (same rules, moving the group intact).
fn sink_rec(binds: Vec<(Binder, Expr)>, body: Expr, moved: &mut u64) -> Expr {
    let binders: Vec<&Binder> = binds.iter().map(|(b, _)| b).collect();
    match body {
        Expr::Case(s, alts) => {
            let in_scrut = uses(&s, &binders);
            let using: Vec<usize> = alts
                .iter()
                .enumerate()
                .filter(|(_, a)| uses(&a.rhs, &binders))
                .map(|(i, _)| i)
                .collect();
            if in_scrut && using.is_empty() {
                *moved += 1;
                return Expr::case(sink_rec(binds, Expr::unshare(s), moved), alts);
            }
            if !in_scrut && using.len() == 1 {
                let target = using[0];
                *moved += 1;
                let alts2: Vec<Alt> = alts
                    .into_iter()
                    .enumerate()
                    .map(|(i, a)| {
                        if i == target {
                            Alt {
                                con: a.con.clone(),
                                binders: a.binders.clone(),
                                rhs: sink_rec(binds.clone(), a.rhs, moved),
                            }
                        } else {
                            a
                        }
                    })
                    .collect();
                return Expr::case(Expr::unshare(s), alts2);
            }
            Expr::letrec(binds, Expr::Case(s, alts))
        }
        // As in `sink`: only hop past an independent binding when the
        // group keeps travelling below — a bare order swap is not
        // progress and would ping-pong between passes.
        Expr::Let(bind2, body2) => {
            let rhs_uses = bind2.pairs().iter().any(|(_, r)| uses(r, &binders));
            if !rhs_uses {
                let before = *moved;
                let sunk = sink_rec(binds.clone(), (*body2).clone(), moved);
                if *moved > before {
                    *moved += 1;
                    return Expr::Let(bind2, Expr::share(sunk));
                }
            }
            Expr::letrec(binds, Expr::Let(bind2, body2))
        }
        Expr::Join(jb, body2) => {
            // As in `sink`: never move bindings into join definitions.
            let defs_use = jb.defs().iter().any(|d| uses(&d.body, &binders));
            if !defs_use && uses(&body2, &binders) {
                *moved += 1;
                return Expr::Join(
                    jb,
                    Expr::share(sink_rec(binds, Expr::unshare(body2), moved)),
                );
            }
            Expr::letrec(binds, Expr::Join(jb, body2))
        }
        other => Expr::letrec(binds, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{AltCon, Dsl, PrimOp, Type};
    use fj_eval::{run_int, EvalMode};

    #[test]
    fn sinks_into_single_branch() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        // let x = 1 + 2 in if True then x else 0
        let e = Expr::let1(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
            Expr::ite(Expr::bool(true), Expr::var(&x.name), Expr::Lit(0)),
        );
        let r = float_in(&e);
        // The let moved inside the True branch.
        match &r {
            Expr::Case(_, alts) => {
                assert!(matches!(alts[0].rhs, Expr::Let(..)), "got:\n{r}");
                assert!(matches!(alts[1].rhs, Expr::Lit(0)));
            }
            other => panic!("expected case at top, got:\n{other}"),
        }
        assert_eq!(run_int(&r, EvalMode::CallByName, 10_000).unwrap(), 3);
    }

    #[test]
    fn does_not_sink_into_multiple_branches() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let e = Expr::let1(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
            Expr::ite(Expr::bool(true), Expr::var(&x.name), Expr::var(&x.name)),
        );
        let r = float_in(&e);
        assert!(matches!(r, Expr::Let(..)), "must stay outside:\n{r}");
    }

    #[test]
    fn does_not_sink_into_lambda() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let y = d.binder("y", Type::Int);
        let e = Expr::let1(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
            Expr::lam(y, Expr::var(&x.name)),
        );
        let r = float_in(&e);
        assert!(
            matches!(r, Expr::Let(..)),
            "must stay outside lambdas:\n{r}"
        );
    }

    /// The Moby staging example (Sec. 4): float a function definition
    /// inward past an evaluation context so its calls become tail calls.
    #[test]
    fn float_in_exposes_tail_calls() {
        let mut d = Dsl::new();
        let f = d.binder("f", Type::fun(Type::Int, Type::Int));
        let x = d.binder("x", Type::Int);
        // let f = \x. x + 1 in case (f 1) of { 2 -> 10; _ -> 20 }
        //    — f is used (only) in the scrutinee; Float In moves the
        //      binding into the scrutinee position.
        let e = Expr::let1(
            f.clone(),
            Expr::lam(
                x.clone(),
                Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
            ),
            Expr::case(
                Expr::app(Expr::var(&f.name), Expr::Lit(1)),
                vec![
                    fj_ast::Alt::simple(AltCon::Lit(2), Expr::Lit(10)),
                    fj_ast::Alt::simple(AltCon::Default, Expr::Lit(20)),
                ],
            ),
        );
        let r = float_in(&e);
        match &r {
            Expr::Case(s, _) => assert!(matches!(&**s, Expr::Let(..)), "got:\n{r}"),
            other => panic!("expected case at top, got:\n{other}"),
        }
        assert_eq!(run_int(&r, EvalMode::CallByName, 10_000).unwrap(), 10);
    }

    #[test]
    fn rec_group_sinks_into_branch() {
        let mut d = Dsl::new();
        let loop_e = d.letrec_loop(
            "go",
            vec![("n", Type::Int)],
            Type::Int,
            |_, go, ps| {
                Expr::ite(
                    Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                    Expr::Lit(0),
                    Expr::app(
                        Expr::var(go),
                        Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1)),
                    ),
                )
            },
            |_, go| Expr::app(Expr::var(go), Expr::Lit(3)),
        );
        // if True then <loop> else 7 — with the letrec pre-hoisted outside.
        match loop_e {
            Expr::Let(bind, body) => {
                let LetBind::Rec(binds) = bind else {
                    panic!("rec expected")
                };
                let outer = Expr::ite(Expr::bool(true), Expr::unshare(body), Expr::Lit(7));
                let e = Expr::letrec(binds, outer);
                let r = float_in(&e);
                match &r {
                    Expr::Case(_, alts) => {
                        assert!(matches!(alts[0].rhs, Expr::Let(..)), "got:\n{r}");
                    }
                    other => panic!("expected case, got:\n{other}"),
                }
                assert_eq!(run_int(&r, EvalMode::CallByName, 10_000).unwrap(), 0);
            }
            other => panic!("expected letrec, got:\n{other}"),
        }
    }
}
