//! A sharded, content-addressed optimization cache with a byte-budgeted
//! LRU policy, per-key single-flight, and an optional persistent tier.
//!
//! `fj serve` compiles the same programs over and over (editors re-check
//! on every keystroke; CI re-runs whole suites), and the optimizer is a
//! *pure function* of `(term, datatype environment, configuration)` — the
//! name supply only influences the spelling of fresh binders, never the
//! shape of the output. That makes optimization memoizable **up to
//! α-equivalence**: two textually different programs that differ only in
//! binder names must produce α-equivalent output, so they can share a
//! cache entry.
//!
//! ## Keying
//!
//! A lookup key is the triple of
//! [`alpha_fingerprint`](fj_ast::alpha_fingerprint) of the input term
//! (binder-name-blind by construction),
//! [`OptConfig::fingerprint`](crate::OptConfig::fingerprint) (every knob
//! that can change the output, `None` under a fault-injection tap — tapped
//! pipelines bypass the cache), and
//! [`DataEnv::fingerprint`](fj_ast::DataEnv::fingerprint) (constructor
//! tags and field types drive `case` simplification), plus the
//! strict/resilient mode bit. Fingerprints are 64-bit and *can* collide,
//! so a hit is only served after an explicit
//! [`alpha_eq`](fj_ast::alpha_eq) check of the stored input term against
//! the request — one linear walk, still orders of magnitude cheaper than
//! a pipeline run, and it makes the cache sound rather than probabilistic.
//! On a *verified* non-match (same key, different term) the colliding
//! insert **replaces** the resident entry — last writer wins — so no
//! program can be starved of caching by an unlucky fingerprint.
//!
//! ## Eviction: byte-budgeted LRU
//!
//! Entries are charged by measured size (the pipeline's censuses already
//! count every node of both terms), each shard owns an equal slice of the
//! [`OptCache`] byte budget, and the budget is a hard bound: an insert
//! evicts least-recently-used entries until the new entry fits, and an
//! entry larger than a whole shard's slice is not cached at all. A hit
//! refreshes the entry's LRU stamp (one counter bump under the shard lock
//! it already holds).
//!
//! ## Single-flight misses
//!
//! Concurrent misses for the same key would each run the full pipeline —
//! the classic dogpile. Instead, the first miss registers an in-flight
//! marker under the shard lock and becomes the *leader*; α-equal
//! followers block on it and adopt its result (counted as `coalesced`,
//! with the same supply advance a hit performs). If the leader's pipeline
//! fails, waiters retry for themselves — errors are never cached and
//! never shared.
//!
//! ## Name-capture safety on hits
//!
//! A cached term was produced under *another* request's name supply. The
//! entry records that supply's high-water mark, and a hit advances the
//! requester's supply past it
//! ([`NameSupply::advance_past`](fj_ast::NameSupply::advance_past)) so
//! later fresh names can never collide with names inside the adopted term.
//!
//! ## The persistent tier
//!
//! An [`OptCache`] may carry a [`CacheStore`] — a content-addressed disk
//! tier consulted between the in-memory miss and the pipeline run, and
//! written behind after every successful compile. The store trafficks in
//! plain [`Expr`]s; serialization lives with the implementation (the
//! server's store unparses to surface text and **re-lowers through the
//! full frontend on load**). Adoption mirrors the in-memory hit
//! discipline: the decoded input must α-match the request, the datatype
//! environment fingerprint must match, and the decoded output must lint —
//! so a truncated, corrupt, or stale file can only ever cost a miss,
//! never a wrong term. A disk hit synthesizes a zero-pass
//! [`PipelineReport`] (the censuses are real walks of the adopted terms)
//! and populates the in-memory tier.
//!
//! ## Concurrency
//!
//! The map is split into shards, each behind its own [`Mutex`]; the shard
//! index is derived from the key, so concurrent requests for different
//! programs almost never contend. Values are `Arc`-shared — a hit hands
//! back refcounted pointers to the optimized term and its
//! [`PipelineReport`] and runs **zero passes**.

use crate::pipeline::{optimize_resilient, optimize_with_report, OptConfig};
use crate::stats::{Census, PipelineReport};
use crate::OptError;
use fj_ast::{alpha_eq, alpha_fingerprint, DataEnv, Expr, FxHashMap, NameSupply};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Default number of shards ([`OptCache::with_budget`] callers override).
pub const DEFAULT_SHARDS: usize = 16;

/// Default total byte budget (64 MiB), split evenly across shards.
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// Approximate resident bytes per term node when charging entries against
/// the budget. A core node is an enum behind an `Arc` with child vectors;
/// 96 bytes is a deliberate overestimate so the budget errs toward
/// evicting early rather than blowing past real memory.
const NODE_BYTES: usize = 96;

/// Fixed per-entry overhead (key, report, map slot) charged on top of the
/// per-node cost.
const ENTRY_OVERHEAD: usize = 256;

/// The full cache key: input term (up to α-equivalence), optimizer
/// configuration, datatype environment, and pipeline mode. Public so
/// [`CacheStore`] implementations can address persisted entries by it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`alpha_fingerprint`] of the input term.
    pub term: u64,
    /// [`OptConfig::fingerprint`] of the configuration.
    pub cfg: u64,
    /// [`DataEnv::fingerprint`] of the datatype environment.
    pub env: u64,
    /// Strict vs. resilient pipeline mode.
    pub resilient: bool,
}

/// One memoized pipeline run.
struct CacheEntry {
    /// The exact input term the entry was built from, kept to verify hits
    /// with a real [`alpha_eq`] walk (64-bit fingerprints can collide).
    input: Arc<Expr>,
    /// The optimized output.
    term: Arc<Expr>,
    /// The pipeline report of the run that produced `term`.
    report: Arc<PipelineReport>,
    /// High-water mark of the producing name supply; adopters advance
    /// past it so their fresh names cannot collide with names in `term`.
    supply_high: u64,
    /// Budget charge (measured node counts × [`NODE_BYTES`]).
    bytes: usize,
    /// LRU stamp: the cache clock value at the last hit or insert.
    stamp: u64,
}

/// A successfully decoded persisted entry, pending verification.
pub struct StoredEntry {
    /// The re-lowered input term, to α-verify against the request.
    pub input: Expr,
    /// The re-lowered optimized output.
    pub output: Expr,
    /// Fingerprint of the datatype environment the entry decoded under;
    /// must equal the request's or the entry is stale.
    pub env_fingerprint: u64,
    /// A name-supply mark past every name in `input` and `output`.
    pub supply_high: u64,
}

/// Result of probing the persistent tier for a key.
pub enum DiskLoad {
    /// No persisted entry.
    Absent,
    /// A persisted entry exists but does not decode (truncated, garbage,
    /// wrong format version). Counted as a verify failure; costs a miss.
    Corrupt,
    /// A decoded entry — still subject to α-verification, environment
    /// fingerprint equality, and an output lint before adoption.
    Entry(Box<StoredEntry>),
}

/// A persistent content-addressed tier beneath the in-memory cache.
///
/// Implementations must be infallible in the API sense: IO and decode
/// problems surface as [`DiskLoad::Absent`]/[`DiskLoad::Corrupt`] or a
/// `false` store result, never as panics or errors — the cache treats
/// the tier as advisory.
pub trait CacheStore: Send + Sync {
    /// Probe for a persisted entry.
    fn load(&self, key: &CacheKey) -> DiskLoad;
    /// Persist an entry. Returns `false` on failure (e.g. a read-only
    /// cache directory), which is counted and otherwise ignored.
    fn store(&self, key: &CacheKey, input: &Expr, output: &Expr, env: &DataEnv) -> bool;
}

/// What a leader publishes to coalesced waiters.
enum FlightState {
    Pending,
    Done(Arc<Expr>, Arc<PipelineReport>, u64),
    Failed,
}

/// An in-flight compile for one key: the leader's input (waiters must
/// α-match it — the key alone could collide) and the publish slot.
struct Flight {
    input: Arc<Expr>,
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn publish(&self, state: FlightState) {
        *self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = state;
        self.cv.notify_all();
    }
}

/// One shard: a byte-bounded LRU map plus the in-flight table.
#[derive(Default)]
struct Shard {
    map: FxHashMap<CacheKey, CacheEntry>,
    /// Sum of `bytes` over resident entries; never exceeds the shard's
    /// slice of the budget.
    bytes: usize,
    inflight: FxHashMap<CacheKey, Arc<Flight>>,
}

impl Shard {
    /// Evict least-recently-stamped entries until `need` bytes fit under
    /// `budget`, then account for them. Returns evictions performed.
    fn make_room(&mut self, need: usize, budget: usize) -> u64 {
        let mut evicted = 0;
        while self.bytes + need > budget && !self.map.is_empty() {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
            {
                if let Some(e) = self.map.remove(&oldest) {
                    self.bytes -= e.bytes;
                    evicted += 1;
                }
            }
        }
        evicted
    }
}

/// Point-in-time counters for one [`OptCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the in-memory tier (zero passes run).
    pub hits: u64,
    /// Lookups that ran the pipeline and inserted the result.
    pub misses: u64,
    /// Lookups that skipped the cache entirely (tapped configuration).
    pub bypasses: u64,
    /// Lookups that adopted a concurrent leader's result instead of
    /// running their own pipeline (single-flight; zero passes run).
    pub coalesced: u64,
    /// Entries displaced by the byte budget.
    pub evictions: u64,
    /// Entries currently resident, summed over shards.
    pub entries: usize,
    /// Bytes currently charged against the budget, summed over shards.
    pub bytes: usize,
    /// Total byte budget.
    pub budget: usize,
    /// Number of shards.
    pub shards: usize,
    /// Persistent-tier probes that found a decodable entry.
    pub disk_loads: u64,
    /// Persistent-tier entries adopted after full verification
    /// (zero passes run).
    pub disk_hits: u64,
    /// Persistent-tier probes that found nothing.
    pub disk_misses: u64,
    /// Persisted entries that failed decoding or verification
    /// (truncated, garbage, stale environment, fingerprint collision).
    pub disk_verify_failures: u64,
    /// Entries successfully written to the persistent tier.
    pub disk_writes: u64,
    /// Failed persistent-tier writes (e.g. read-only directory).
    pub disk_write_failures: u64,
}

/// A sharded content-addressed cache of optimization results. See the
/// module docs for keying, eviction, and soundness.
pub struct OptCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard slice of the byte budget.
    shard_budget: usize,
    /// Monotonic LRU clock; every hit or insert stamps the entry.
    clock: AtomicU64,
    store: Option<Arc<dyn CacheStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    disk_loads: AtomicU64,
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    disk_verify_failures: AtomicU64,
    disk_writes: AtomicU64,
    disk_write_failures: AtomicU64,
    /// Test hook: collapse every term fingerprint to one value so key
    /// collisions become constructible.
    #[cfg(test)]
    collide_keys: bool,
}

impl OptCache {
    /// A cache of `shards` independently locked shards sharing a total
    /// byte budget of `max_bytes` (each shard owns an equal slice).
    /// Shards are clamped to at least 1; a zero budget caches nothing.
    pub fn with_budget(shards: usize, max_bytes: usize) -> Self {
        let shards = shards.max(1);
        OptCache {
            shard_budget: max_bytes / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(1),
            store: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk_loads: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_misses: AtomicU64::new(0),
            disk_verify_failures: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            disk_write_failures: AtomicU64::new(0),
            #[cfg(test)]
            collide_keys: false,
        }
    }

    /// Attach a persistent tier (consulted on miss, written behind on
    /// every successful pipeline run).
    #[must_use]
    pub fn with_store(mut self, store: Arc<dyn CacheStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Whether a persistent tier is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        // The key components are already hashes; mixing them with
        // distinct rotations keeps e.g. same-program/different-preset
        // entries off the same shard.
        let mix = key.term.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
            ^ key.cfg.rotate_left(31)
            ^ key.env
            ^ u64::from(key.resilient);
        &self.shards[(mix as usize) % self.shards.len()]
    }

    fn term_fingerprint(&self, e: &Expr) -> u64 {
        #[cfg(test)]
        if self.collide_keys {
            return 0;
        }
        alpha_fingerprint(e)
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes) = self
            .shards
            .iter()
            .map(|s| {
                let s = s.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                (s.map.len(), s.bytes)
            })
            .fold((0, 0), |(n, b), (n2, b2)| (n + n2, b + b2));
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
            budget: self.shard_budget * self.shards.len(),
            shards: self.shards.len(),
            disk_loads: self.disk_loads.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.disk_misses.load(Ordering::Relaxed),
            disk_verify_failures: self.disk_verify_failures.load(Ordering::Relaxed),
            disk_writes: self.disk_writes.load(Ordering::Relaxed),
            disk_write_failures: self.disk_write_failures.load(Ordering::Relaxed),
        }
    }

    /// Drop every in-memory entry (counters and the persistent tier are
    /// kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            shard.bytes = 0;
            shard.map.clear();
        }
    }

    /// Insert (or, on a verified key collision, replace) an entry,
    /// holding the byte budget invariant. Entries larger than a whole
    /// shard slice are not cached.
    fn insert(&self, key: CacheKey, entry: CacheEntry) {
        let shard = self.shard_for(&key);
        let mut guard = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(old) = guard.map.remove(&key) {
            // Same key, different (verified at lookup) term: replace.
            // Last writer wins, so a colliding program is never starved.
            guard.bytes -= old.bytes;
        }
        if entry.bytes > self.shard_budget {
            return;
        }
        let evicted = guard.make_room(entry.bytes, self.shard_budget);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        guard.bytes += entry.bytes;
        guard.map.insert(key, entry);
    }
}

impl Default for OptCache {
    fn default() -> Self {
        OptCache::with_budget(DEFAULT_SHARDS, DEFAULT_CACHE_BYTES)
    }
}

/// Budget charge for one entry: measured node counts of both terms times
/// a per-node cost, plus fixed overhead.
fn entry_cost(report: &PipelineReport) -> usize {
    (report.census_before.size + report.census_after.size) * NODE_BYTES + ENTRY_OVERHEAD
}

/// Removes the in-flight marker and publishes failure if the leader
/// unwinds (error return or panic) without publishing a result, so
/// waiters never hang on a dead flight.
struct FlightGuard<'a> {
    shard: &'a Mutex<Shard>,
    key: CacheKey,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard<'_> {
    /// Publish success and retire the flight.
    fn finish(mut self, term: Arc<Expr>, report: Arc<PipelineReport>, supply_high: u64) {
        self.retire();
        self.flight
            .publish(FlightState::Done(term, report, supply_high));
        self.published = true;
    }

    fn retire(&self) {
        let mut guard = self
            .shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Only remove our own flight (a retrying waiter may have
        // registered a new one under the same key after a failure).
        if let Some(f) = guard.inflight.get(&self.key) {
            if Arc::ptr_eq(f, &self.flight) {
                guard.inflight.remove(&self.key);
            }
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.retire();
            self.flight.publish(FlightState::Failed);
        }
    }
}

/// Outcome of waiting on another request's in-flight compile.
enum Waited {
    Adopted(Arc<Expr>, Arc<PipelineReport>, u64),
    LeaderFailed,
}

fn wait_on(flight: &Flight) -> Waited {
    let mut state = flight
        .state
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    loop {
        match &*state {
            FlightState::Pending => {
                // The timeout is belt-and-braces: FlightGuard already
                // publishes on every leader exit path.
                let (s, _) = flight
                    .cv
                    .wait_timeout(state, Duration::from_secs(60))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                state = s;
            }
            FlightState::Done(term, report, high) => {
                return Waited::Adopted(Arc::clone(term), Arc::clone(report), *high);
            }
            FlightState::Failed => return Waited::LeaderFailed,
        }
    }
}

/// Optimize through the cache: serve an α-verified hit when one exists,
/// otherwise coalesce onto an in-flight identical compile, otherwise
/// consult the persistent tier, otherwise run the pipeline (strict
/// [`optimize_with_report`] or [`optimize_resilient`] per `resilient`)
/// and memoize the result in every tier.
///
/// The returned flag is `true` exactly when the result came from a cache
/// tier or a coalesced flight — in which case **zero passes ran** and
/// `supply` was advanced past the producing run's high-water mark instead
/// of being drawn from.
///
/// The input is Core-Linted before every pipeline run (misses and
/// bypasses); verified hits skip the lint, which is sound because typing
/// is α-invariant and the resident entry's input was linted when it was
/// inserted. A disk adoption lints the decoded *output* instead — the
/// file is outside the process's integrity domain.
///
/// # Errors
///
/// [`OptError::Type`](crate::OptError::Type) for ill-typed input,
/// otherwise exactly the errors of the underlying pipeline entry point.
/// Failed runs are never cached (an error may be budget-dependent and
/// transient).
#[allow(clippy::too_many_lines)]
pub fn optimize_cached(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
    resilient: bool,
    cache: &OptCache,
) -> Result<(Arc<Expr>, Arc<PipelineReport>, bool), OptError> {
    // Lint gates every *pipeline run*; verified hits skip it. That is
    // sound, not just fast: typing is α-invariant, and a hit is only
    // served after an α-walk against an input that was linted before it
    // was inserted.
    let run = |supply: &mut NameSupply| {
        fj_check::lint(e, data_env)?;
        if resilient {
            optimize_resilient(e, data_env, supply, cfg)
        } else {
            optimize_with_report(e, data_env, supply, cfg)
        }
    };
    let Some(cfg_fp) = cfg.fingerprint() else {
        // Tapped configuration: uncacheable, run directly.
        cache.bypasses.fetch_add(1, Ordering::Relaxed);
        let (out, report) = run(supply)?;
        return Ok((Arc::new(out), Arc::new(report), false));
    };
    let key = CacheKey {
        term: cache.term_fingerprint(e),
        cfg: cfg_fp,
        env: data_env.fingerprint(),
        resilient,
    };
    let shard = cache.shard_for(&key);
    // Lookup loop: a waiter whose leader failed comes back around to try
    // for leadership itself.
    let flight_guard = loop {
        let mut guard = shard
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = guard.map.get_mut(&key) {
            // Fingerprints can collide; only a real α-walk makes the hit
            // sound. A collision (different term, same key) falls through
            // to a pipeline run whose insert *replaces* this entry.
            if alpha_eq(e, &entry.input) {
                entry.stamp = cache.clock.fetch_add(1, Ordering::Relaxed);
                let hit = (Arc::clone(&entry.term), Arc::clone(&entry.report));
                let supply_high = entry.supply_high;
                drop(guard);
                supply.advance_past(supply_high);
                cache.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((hit.0, hit.1, true));
            }
        }
        if let Some(flight) = guard.inflight.get(&key) {
            if alpha_eq(e, &flight.input) {
                // Someone is compiling this very term: wait and adopt.
                let flight = Arc::clone(flight);
                drop(guard);
                match wait_on(&flight) {
                    Waited::Adopted(term, report, high) => {
                        supply.advance_past(high);
                        cache.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Ok((term, report, true));
                    }
                    Waited::LeaderFailed => continue,
                }
            }
            // Key collision with a different in-flight term: compile
            // independently, unregistered (one flight per key).
            drop(guard);
            let (out, report) = run(supply)?;
            cache.misses.fetch_add(1, Ordering::Relaxed);
            let (term, report) = (Arc::new(out), Arc::new(report));
            cache.insert(
                key,
                CacheEntry {
                    input: Arc::new(e.clone()),
                    term: Arc::clone(&term),
                    report: Arc::clone(&report),
                    supply_high: supply.peek(),
                    bytes: entry_cost(&report),
                    stamp: cache.clock.fetch_add(1, Ordering::Relaxed),
                },
            );
            return Ok((term, report, false));
        }
        // No resident α-match, nothing in flight: lead.
        let flight = Arc::new(Flight {
            input: Arc::new(e.clone()),
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        });
        guard.inflight.insert(key, Arc::clone(&flight));
        break FlightGuard {
            shard,
            key,
            flight,
            published: false,
        };
    };

    // Leader path. First give the persistent tier a chance to spare us
    // the pipeline entirely.
    if let Some(store) = &cache.store {
        match store.load(&key) {
            DiskLoad::Absent => {
                cache.disk_misses.fetch_add(1, Ordering::Relaxed);
            }
            DiskLoad::Corrupt => {
                cache.disk_verify_failures.fetch_add(1, Ordering::Relaxed);
            }
            DiskLoad::Entry(stored) => {
                cache.disk_loads.fetch_add(1, Ordering::Relaxed);
                // Adoption discipline: right environment, α-equal input,
                // and a well-typed output. Anything less is a miss.
                if stored.env_fingerprint == key.env
                    && alpha_eq(e, &stored.input)
                    && fj_check::lint(&stored.output, data_env).is_ok()
                {
                    let term = Arc::new(stored.output);
                    let report = Arc::new(PipelineReport {
                        census_before: Census::of(&stored.input),
                        passes: Vec::new(),
                        census_after: Census::of(&term),
                        wall: Duration::ZERO,
                        leaked_workers: 0,
                    });
                    supply.advance_past(stored.supply_high);
                    cache.insert(
                        key,
                        CacheEntry {
                            input: Arc::new(stored.input),
                            term: Arc::clone(&term),
                            report: Arc::clone(&report),
                            supply_high: stored.supply_high,
                            bytes: entry_cost(&report),
                            stamp: cache.clock.fetch_add(1, Ordering::Relaxed),
                        },
                    );
                    cache.disk_hits.fetch_add(1, Ordering::Relaxed);
                    flight_guard.finish(Arc::clone(&term), Arc::clone(&report), stored.supply_high);
                    return Ok((term, report, true));
                }
                cache.disk_verify_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // Miss: run the pipeline outside any shard lock (a slow compile must
    // not block unrelated lookups that happen to share the shard). An
    // error drops `flight_guard`, which wakes waiters with `Failed`.
    let (out, report) = run(supply)?;
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let supply_high = supply.peek();
    let (term, report) = (Arc::new(out), Arc::new(report));
    let input = Arc::new(e.clone());
    cache.insert(
        key,
        CacheEntry {
            input: Arc::clone(&input),
            term: Arc::clone(&term),
            report: Arc::clone(&report),
            supply_high,
            bytes: entry_cost(&report),
            stamp: cache.clock.fetch_add(1, Ordering::Relaxed),
        },
    );
    flight_guard.finish(Arc::clone(&term), Arc::clone(&report), supply_high);
    // Write-behind after waiters are released: persistence is advisory
    // and must not extend the dogpile window.
    if let Some(store) = &cache.store {
        if store.store(&key, &input, &term, data_env) {
            cache.disk_writes.fetch_add(1, Ordering::Relaxed);
        } else {
            cache.disk_write_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
    Ok((term, report, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{PassCtx, PassTap};
    use fj_ast::{Dsl, Type};

    /// `\n. (\x. x + n) 1` — enough structure for the simplifier to act on.
    fn program(dsl: &mut Dsl) -> Expr {
        use fj_ast::PrimOp;
        let n = dsl.binder("n", Type::Int);
        let x = dsl.binder("x", Type::Int);
        let body = Expr::app(
            Expr::lam(
                x.clone(),
                Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&n.name)),
            ),
            Expr::Lit(1),
        );
        Expr::lam(n, body)
    }

    /// `\x. x + <lit>` — a family of distinct same-shape programs.
    fn keyed_program(dsl: &mut Dsl, i: i64) -> Expr {
        use fj_ast::PrimOp;
        let x = dsl.binder("x", Type::Int);
        Expr::lam(
            x.clone(),
            Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(i)),
        )
    }

    #[test]
    fn second_compile_is_a_hit_and_alpha_equal() {
        let cache = OptCache::default();
        let cfg = OptConfig::join_points();

        let mut d1 = Dsl::new();
        let e1 = program(&mut d1);
        let mut s1 = d1.supply;
        let (t1, r1, hit1) =
            optimize_cached(&e1, &d1.data_env, &mut s1, &cfg, false, &cache).unwrap();
        assert!(!hit1);
        assert!(!r1.passes.is_empty());

        // A fresh `Dsl` draws different uniques: textually different,
        // α-equivalent — must hit the same entry.
        let mut d2 = Dsl::new();
        for _ in 0..7 {
            d2.supply.fresh("skew");
        }
        let e2 = program(&mut d2);
        let mut s2 = d2.supply;
        let (t2, r2, hit2) =
            optimize_cached(&e2, &d2.data_env, &mut s2, &cfg, false, &cache).unwrap();
        assert!(hit2, "α-equivalent program must hit");
        assert!(alpha_eq(&t1, &t2));
        assert!(Arc::ptr_eq(&r1, &r2), "hit shares the report allocation");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0 && stats.bytes <= stats.budget);
    }

    #[test]
    fn hit_advances_the_supply_past_the_producer() {
        let cache = OptCache::default();
        let cfg = OptConfig::join_points();
        let mut d1 = Dsl::new();
        // Skew the producer's supply forward so its high-water mark is
        // strictly above anything a fresh supply has handed out.
        for _ in 0..100 {
            d1.supply.fresh("skew");
        }
        let e1 = program(&mut d1);
        let mut s1 = d1.supply;
        optimize_cached(&e1, &d1.data_env, &mut s1, &cfg, false, &cache).unwrap();
        let producer_high = s1.peek();

        let mut d2 = Dsl::new();
        let e2 = program(&mut d2);
        let mut s2 = d2.supply;
        assert!(s2.peek() < producer_high);
        let (_, _, hit) = optimize_cached(&e2, &d2.data_env, &mut s2, &cfg, false, &cache).unwrap();
        assert!(hit);
        assert!(
            s2.peek() >= producer_high,
            "adopting supply must jump past every name in the cached term"
        );
    }

    #[test]
    fn config_and_mode_changes_miss() {
        let cache = OptCache::default();
        let mut d = Dsl::new();
        let e = program(&mut d);
        let mut s = d.supply.clone();
        let join = OptConfig::join_points();
        let base = OptConfig::baseline();
        optimize_cached(&e, &d.data_env, &mut s, &join, false, &cache).unwrap();
        let (_, _, hit_other_cfg) =
            optimize_cached(&e, &d.data_env, &mut s, &base, false, &cache).unwrap();
        assert!(
            !hit_other_cfg,
            "different OptConfig must not share an entry"
        );
        let (_, _, hit_resilient) =
            optimize_cached(&e, &d.data_env, &mut s, &join, true, &cache).unwrap();
        assert!(!hit_resilient, "strict and resilient runs must not share");
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn tapped_configs_bypass_the_cache() {
        let cache = OptCache::default();
        let mut d = Dsl::new();
        let e = program(&mut d);
        let mut s = d.supply.clone();
        let tapped = OptConfig::join_points().with_tap(PassTap::new(|_: &PassCtx, r| r));
        assert_eq!(tapped.fingerprint(), None);
        for _ in 0..2 {
            let (_, _, hit) =
                optimize_cached(&e, &d.data_env, &mut s, &tapped, false, &cache).unwrap();
            assert!(!hit);
        }
        let stats = cache.stats();
        assert_eq!((stats.bypasses, stats.entries), (2, 0));
    }

    /// Per-entry budget charge for this test family, measured — the
    /// tests below size budgets in units of it.
    fn one_entry_bytes() -> usize {
        let cache = OptCache::with_budget(1, usize::MAX);
        let mut d = Dsl::new();
        let mut s = d.supply.clone();
        let e = keyed_program(&mut d, 0);
        optimize_cached(&e, &d.data_env, &mut s, &OptConfig::none(), false, &cache).unwrap();
        cache.stats().bytes
    }

    #[test]
    fn byte_budget_is_never_exceeded_under_churn() {
        let unit = one_entry_bytes();
        // Room for two entries (plus slack), then stream 40 distinct
        // programs through: the budget must hold after every insert.
        let budget = unit * 5 / 2;
        let cache = OptCache::with_budget(1, budget);
        let mut d = Dsl::new();
        let mut s = d.supply.clone();
        for i in 0..40 {
            let e = keyed_program(&mut d, i);
            optimize_cached(&e, &d.data_env, &mut s, &OptConfig::none(), false, &cache).unwrap();
            let stats = cache.stats();
            assert!(
                stats.bytes <= stats.budget,
                "budget exceeded after insert {i}: {} > {}",
                stats.bytes,
                stats.budget
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 38, "churn must evict: {stats:?}");
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn lru_keeps_the_hot_entry_resident() {
        let unit = one_entry_bytes();
        let cache = OptCache::with_budget(1, unit * 5 / 2);
        let cfg = OptConfig::none();
        let mut d = Dsl::new();
        let mut s = d.supply.clone();
        let hot = keyed_program(&mut d, 1000);
        optimize_cached(&hot, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        // Cold traffic streams past; the hot entry is re-hit between
        // every cold insert and must stay resident throughout.
        for i in 0..10 {
            let cold = keyed_program(&mut d, i);
            optimize_cached(&cold, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
            let (_, _, hit) =
                optimize_cached(&hot, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
            assert!(hit, "LRU must keep the repeatedly-hit entry (round {i})");
        }
        // Under FIFO the hot entry (oldest insert) would have been the
        // first casualty; under LRU the evictions all hit cold entries.
        assert!(cache.stats().evictions >= 9);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let cache = OptCache::with_budget(1, 1);
        let mut d = Dsl::new();
        let mut s = d.supply.clone();
        let e = keyed_program(&mut d, 7);
        optimize_cached(&e, &d.data_env, &mut s, &OptConfig::none(), false, &cache).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.bytes), (0, 0));
        let (_, _, hit) =
            optimize_cached(&e, &d.data_env, &mut s, &OptConfig::none(), false, &cache).unwrap();
        assert!(!hit);
    }

    #[test]
    fn colliding_keys_replace_instead_of_starving() {
        // Two different programs forced onto one key: the second compile
        // must still get cached (replacing the first), and each program
        // recompiles with at most one miss afterward — no starvation.
        let mut cache = OptCache::with_budget(1, usize::MAX);
        cache.collide_keys = true;
        let cfg = OptConfig::none();
        let mut d = Dsl::new();
        let mut s = d.supply.clone();
        let a = keyed_program(&mut d, 1);
        let b = keyed_program(&mut d, 2);
        optimize_cached(&a, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        let (_, _, hit_b) = optimize_cached(&b, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        assert!(!hit_b, "colliding lookup must not serve the wrong term");
        // b replaced a: b now hits, a misses (and replaces back).
        let (tb, _, hit_b2) =
            optimize_cached(&b, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        assert!(hit_b2, "collision victim must be cacheable (was starved)");
        assert!(alpha_eq(&tb, &b), "replaced entry serves the right term");
        let (ta, _, hit_a) = optimize_cached(&a, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        assert!(!hit_a);
        assert!(alpha_eq(&ta, &a));
        assert_eq!(cache.stats().entries, 1, "one key, one slot");
    }

    #[test]
    fn concurrent_identical_misses_run_one_pipeline() {
        use std::sync::Barrier;
        // A deliberately slow disk probe holds the leader in its flight
        // long enough for every waiter to arrive and coalesce.
        struct SlowAbsent;
        impl CacheStore for SlowAbsent {
            fn load(&self, _: &CacheKey) -> DiskLoad {
                std::thread::sleep(Duration::from_millis(150));
                DiskLoad::Absent
            }
            fn store(&self, _: &CacheKey, _: &Expr, _: &Expr, _: &DataEnv) -> bool {
                true
            }
        }
        const N: usize = 8;
        let cache = Arc::new(
            OptCache::with_budget(4, DEFAULT_CACHE_BYTES).with_store(Arc::new(SlowAbsent)),
        );
        let barrier = Arc::new(Barrier::new(N));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut d = Dsl::new();
                    let e = program(&mut d);
                    let mut s = d.supply;
                    barrier.wait();
                    let (term, report, _) = optimize_cached(
                        &e,
                        &d.data_env,
                        &mut s,
                        &OptConfig::join_points(),
                        false,
                        &cache,
                    )
                    .unwrap();
                    // Fresh names drawn after adoption must be past the
                    // producer's supply regardless of who compiled.
                    let high = s.peek();
                    (term, report, high)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one pipeline run: {stats:?}");
        assert_eq!(
            stats.hits + stats.coalesced,
            (N - 1) as u64,
            "everyone else adopts: {stats:?}"
        );
        assert!(
            stats.coalesced >= 1,
            "slow leader must have coalesced waiters: {stats:?}"
        );
        for (term, report, _) in &results[1..] {
            assert!(alpha_eq(term, &results[0].0));
            assert!(Arc::ptr_eq(report, &results[0].1));
        }
    }

    #[test]
    fn leader_failure_wakes_waiters_who_then_retry() {
        // An ill-typed term fails in lint for leader and waiters alike;
        // nobody hangs, nothing is cached.
        struct SlowAbsent;
        impl CacheStore for SlowAbsent {
            fn load(&self, _: &CacheKey) -> DiskLoad {
                std::thread::sleep(Duration::from_millis(100));
                DiskLoad::Absent
            }
            fn store(&self, _: &CacheKey, _: &Expr, _: &Expr, _: &DataEnv) -> bool {
                true
            }
        }
        use std::sync::Barrier;
        const N: usize = 4;
        let cache = Arc::new(
            OptCache::with_budget(1, DEFAULT_CACHE_BYTES).with_store(Arc::new(SlowAbsent)),
        );
        let barrier = Arc::new(Barrier::new(N));
        let handles: Vec<_> = (0..N)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut d = Dsl::new();
                    // `x` unbound: lint fails.
                    let x = d.name("x");
                    let e = Expr::var(&x);
                    let mut s = d.supply;
                    barrier.wait();
                    optimize_cached(
                        &e,
                        &d.data_env,
                        &mut s,
                        &OptConfig::join_points(),
                        false,
                        &cache,
                    )
                    .is_err()
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap(), "every request must see the error");
        }
        assert_eq!(cache.stats().entries, 0, "errors are never cached");
    }

    #[test]
    fn disk_tier_round_trips_through_a_memory_wipe() {
        // An in-process store: the persistence contract without IO.
        // (File-level robustness lives in the server's persist tests.)
        #[derive(Default)]
        struct MemStore {
            map: Mutex<FxHashMap<CacheKey, (Expr, Expr, u64)>>,
        }
        impl CacheStore for MemStore {
            fn load(&self, key: &CacheKey) -> DiskLoad {
                match self.map.lock().unwrap().get(key) {
                    Some((input, output, env)) => DiskLoad::Entry(Box::new(StoredEntry {
                        input: input.clone(),
                        output: output.clone(),
                        env_fingerprint: *env,
                        // A real store re-lowers and takes the fresh
                        // supply's mark; a conservative constant is fine
                        // for an in-process test double.
                        supply_high: 1 << 20,
                    })),
                    None => DiskLoad::Absent,
                }
            }
            fn store(&self, key: &CacheKey, input: &Expr, output: &Expr, env: &DataEnv) -> bool {
                self.map
                    .lock()
                    .unwrap()
                    .insert(*key, (input.clone(), output.clone(), env.fingerprint()));
                true
            }
        }
        let store = Arc::new(MemStore::default());
        let cfg = OptConfig::join_points();
        let cache1 =
            OptCache::with_budget(4, DEFAULT_CACHE_BYTES).with_store(Arc::clone(&store) as _);
        let mut d1 = Dsl::new();
        let e1 = program(&mut d1);
        let mut s1 = d1.supply;
        let (t1, _, hit) =
            optimize_cached(&e1, &d1.data_env, &mut s1, &cfg, false, &cache1).unwrap();
        assert!(!hit);
        assert_eq!(cache1.stats().disk_writes, 1);

        // A "restarted" cache: same store, empty memory.
        let cache2 = OptCache::with_budget(4, DEFAULT_CACHE_BYTES).with_store(store as _);
        let mut d2 = Dsl::new();
        let e2 = program(&mut d2);
        let mut s2 = d2.supply;
        let (t2, r2, hit2) =
            optimize_cached(&e2, &d2.data_env, &mut s2, &cfg, false, &cache2).unwrap();
        assert!(hit2, "restart must be warm");
        assert!(alpha_eq(&t1, &t2));
        assert!(r2.passes.is_empty(), "disk hit runs zero passes");
        let stats = cache2.stats();
        assert_eq!((stats.disk_hits, stats.disk_loads, stats.misses), (1, 1, 0));
        // And the adoption populated the memory tier.
        let (_, _, hit3) =
            optimize_cached(&e2, &d2.data_env, &mut s2, &cfg, false, &cache2).unwrap();
        assert!(hit3);
        assert_eq!(cache2.stats().hits, 1);
    }

    #[test]
    fn stale_disk_entries_are_rejected() {
        // A store that answers every probe with a *different* program's
        // entry — α-verification must refuse it and fall back to the
        // pipeline.
        struct WrongEntry;
        impl CacheStore for WrongEntry {
            fn load(&self, _: &CacheKey) -> DiskLoad {
                let mut d = Dsl::new();
                let other = keyed_program(&mut d, 777_777);
                DiskLoad::Entry(Box::new(StoredEntry {
                    input: other.clone(),
                    output: other,
                    env_fingerprint: 0,
                    supply_high: 1_000_000,
                }))
            }
            fn store(&self, _: &CacheKey, _: &Expr, _: &Expr, _: &DataEnv) -> bool {
                true
            }
        }
        let cache = OptCache::with_budget(1, DEFAULT_CACHE_BYTES).with_store(Arc::new(WrongEntry));
        let mut d = Dsl::new();
        let e = program(&mut d);
        let mut s = d.supply;
        let (t, _, hit) = optimize_cached(
            &e,
            &d.data_env,
            &mut s,
            &OptConfig::join_points(),
            false,
            &cache,
        )
        .unwrap();
        assert!(!hit, "stale entry must cost a miss, not serve a wrong term");
        assert!(!alpha_eq(&t, &e) || t.size() <= e.size());
        let stats = cache.stats();
        assert_eq!((stats.disk_verify_failures, stats.misses), (1, 1));
    }

    #[test]
    fn config_fingerprint_is_stable_and_discriminating() {
        let a = OptConfig::join_points().fingerprint().unwrap();
        let b = OptConfig::join_points().fingerprint().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, OptConfig::baseline().fingerprint().unwrap());
        assert_ne!(a, OptConfig::none().fingerprint().unwrap());
        assert_ne!(
            a,
            OptConfig::join_points()
                .with_max_passes(3)
                .fingerprint()
                .unwrap()
        );
        assert_ne!(
            a,
            OptConfig::join_points()
                .with_pass_deadline(std::time::Duration::from_millis(50))
                .fingerprint()
                .unwrap()
        );
    }
}
