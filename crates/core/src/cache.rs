//! A sharded, content-addressed optimization cache.
//!
//! `fj serve` compiles the same programs over and over (editors re-check
//! on every keystroke; CI re-runs whole suites), and the optimizer is a
//! *pure function* of `(term, datatype environment, configuration)` — the
//! name supply only influences the spelling of fresh binders, never the
//! shape of the output. That makes optimization memoizable **up to
//! α-equivalence**: two textually different programs that differ only in
//! binder names must produce α-equivalent output, so they can share a
//! cache entry.
//!
//! ## Keying
//!
//! A lookup key is the triple of
//! [`alpha_fingerprint`](fj_ast::alpha_fingerprint) of the input term
//! (binder-name-blind by construction),
//! [`OptConfig::fingerprint`](crate::OptConfig::fingerprint) (every knob
//! that can change the output, `None` under a fault-injection tap — tapped
//! pipelines bypass the cache), and
//! [`DataEnv::fingerprint`](fj_ast::DataEnv::fingerprint) (constructor
//! tags and field types drive `case` simplification), plus the
//! strict/resilient mode bit. Fingerprints are 64-bit and *can* collide,
//! so a hit is only served after an explicit
//! [`alpha_eq`](fj_ast::alpha_eq) check of the stored input term against
//! the request — one linear walk, still orders of magnitude cheaper than
//! a pipeline run, and it makes the cache sound rather than probabilistic.
//!
//! ## Name-capture safety on hits
//!
//! A cached term was produced under *another* request's name supply. The
//! entry records that supply's high-water mark, and a hit advances the
//! requester's supply past it
//! ([`NameSupply::advance_past`](fj_ast::NameSupply::advance_past)) so
//! later fresh names can never collide with names inside the adopted term.
//!
//! ## Concurrency
//!
//! The map is split into shards, each behind its own [`Mutex`]; the shard
//! index is derived from the key, so concurrent requests for different
//! programs almost never contend. Values are `Arc`-shared — a hit hands
//! back refcounted pointers to the optimized term and its
//! [`PipelineReport`] and runs **zero passes**.

use crate::pipeline::{optimize_resilient, optimize_with_report, OptConfig};
use crate::stats::PipelineReport;
use crate::OptError;
use fj_ast::{alpha_eq, alpha_fingerprint, DataEnv, Expr, FxHashMap, NameSupply};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of shards ([`OptCache::new`] callers can override).
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard entry cap (total capacity = shards × cap).
pub const DEFAULT_SHARD_CAP: usize = 128;

/// The full cache key: input term (up to α-equivalence), optimizer
/// configuration, datatype environment, and pipeline mode.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    term: u64,
    cfg: u64,
    env: u64,
    resilient: bool,
}

/// One memoized pipeline run.
struct CacheEntry {
    /// The exact input term the entry was built from, kept to verify hits
    /// with a real [`alpha_eq`] walk (64-bit fingerprints can collide).
    input: Arc<Expr>,
    /// The optimized output.
    term: Arc<Expr>,
    /// The pipeline report of the run that produced `term`.
    report: Arc<PipelineReport>,
    /// High-water mark of the producing name supply; adopters advance
    /// past it so their fresh names cannot collide with names in `term`.
    supply_high: u64,
}

/// One shard: a bounded map with FIFO eviction. FIFO (not LRU) keeps the
/// hit path free of order-list writes — a hit touches nothing but the
/// entry itself.
#[derive(Default)]
struct Shard {
    map: FxHashMap<CacheKey, CacheEntry>,
    order: VecDeque<CacheKey>,
}

/// Point-in-time counters for one [`OptCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache (zero passes run).
    pub hits: u64,
    /// Lookups that ran the pipeline and inserted the result.
    pub misses: u64,
    /// Lookups that skipped the cache entirely (tapped configuration).
    pub bypasses: u64,
    /// Entries displaced by the per-shard capacity bound.
    pub evictions: u64,
    /// Entries currently resident, summed over shards.
    pub entries: usize,
    /// Number of shards.
    pub shards: usize,
}

/// A sharded content-addressed cache of optimization results. See the
/// module docs for keying and soundness.
pub struct OptCache {
    shards: Vec<Mutex<Shard>>,
    shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    bypasses: AtomicU64,
    evictions: AtomicU64,
}

impl OptCache {
    /// A cache with `shards` independently locked shards of at most
    /// `shard_cap` entries each. Both are clamped to at least 1.
    pub fn new(shards: usize, shard_cap: usize) -> Self {
        let shards = shards.max(1);
        OptCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: shard_cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        // The key components are already hashes; mixing them with
        // distinct rotations keeps e.g. same-program/different-preset
        // entries off the same shard.
        let mix = key.term.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17)
            ^ key.cfg.rotate_left(31)
            ^ key.env
            ^ u64::from(key.resilient);
        &self.shards[(mix as usize) % self.shards.len()]
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap().map.len())
                .sum(),
            shards: self.shards.len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            shard.map.clear();
            shard.order.clear();
        }
    }
}

impl Default for OptCache {
    fn default() -> Self {
        OptCache::new(DEFAULT_SHARDS, DEFAULT_SHARD_CAP)
    }
}

/// Optimize through the cache: serve an α-verified hit when one exists,
/// otherwise run the pipeline (strict [`optimize_with_report`] or
/// [`optimize_resilient`] per `resilient`) and memoize the result.
///
/// The returned flag is `true` exactly when the result came from the
/// cache — in which case **zero passes ran** and `supply` was advanced
/// past the producing run's high-water mark instead of being drawn from.
///
/// The input is Core-Linted before every pipeline run (misses and
/// bypasses); verified hits skip the lint, which is sound because typing
/// is α-invariant and the resident entry's input was linted when it was
/// inserted.
///
/// # Errors
///
/// [`OptError::Type`](crate::OptError::Type) for ill-typed input,
/// otherwise exactly the errors of the underlying pipeline entry point.
/// Failed runs are never cached (an error may be budget-dependent and
/// transient).
pub fn optimize_cached(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
    resilient: bool,
    cache: &OptCache,
) -> Result<(Arc<Expr>, Arc<PipelineReport>, bool), OptError> {
    // Lint gates every *pipeline run*; verified hits skip it. That is
    // sound, not just fast: typing is α-invariant, and a hit is only
    // served after an α-walk against an input that was linted before it
    // was inserted.
    let run = |supply: &mut NameSupply| {
        fj_check::lint(e, data_env)?;
        if resilient {
            optimize_resilient(e, data_env, supply, cfg)
        } else {
            optimize_with_report(e, data_env, supply, cfg)
        }
    };
    let Some(cfg_fp) = cfg.fingerprint() else {
        // Tapped configuration: uncacheable, run directly.
        cache.bypasses.fetch_add(1, Ordering::Relaxed);
        let (out, report) = run(supply)?;
        return Ok((Arc::new(out), Arc::new(report), false));
    };
    let key = CacheKey {
        term: alpha_fingerprint(e),
        cfg: cfg_fp,
        env: data_env.fingerprint(),
        resilient,
    };
    let shard = cache.shard_for(&key);
    {
        let guard = shard.lock().unwrap();
        if let Some(entry) = guard.map.get(&key) {
            // Fingerprints can collide; only a real α-walk makes the hit
            // sound. A collision (different term, same key) is served as
            // a miss below without evicting the resident entry.
            if alpha_eq(e, &entry.input) {
                let hit = (Arc::clone(&entry.term), Arc::clone(&entry.report));
                let supply_high = entry.supply_high;
                drop(guard);
                supply.advance_past(supply_high);
                cache.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((hit.0, hit.1, true));
            }
        }
    }
    // Miss: run the pipeline outside any shard lock (a slow compile must
    // not block unrelated lookups that happen to share the shard).
    let (out, report) = run(supply)?;
    cache.misses.fetch_add(1, Ordering::Relaxed);
    let entry = CacheEntry {
        input: Arc::new(e.clone()),
        term: Arc::new(out),
        report: Arc::new(report),
        supply_high: supply.peek(),
    };
    let result = (Arc::clone(&entry.term), Arc::clone(&entry.report));
    let mut guard = shard.lock().unwrap();
    if !guard.map.contains_key(&key) {
        while guard.map.len() >= cache.shard_cap {
            match guard.order.pop_front() {
                Some(oldest) => {
                    guard.map.remove(&oldest);
                    cache.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        guard.order.push_back(key);
        guard.map.insert(key, entry);
    }
    Ok((result.0, result.1, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{PassCtx, PassTap};
    use fj_ast::{Dsl, Type};

    /// `\n. (\x. x + n) 1` — enough structure for the simplifier to act on.
    fn program(dsl: &mut Dsl) -> Expr {
        use fj_ast::PrimOp;
        let n = dsl.binder("n", Type::Int);
        let x = dsl.binder("x", Type::Int);
        let body = Expr::app(
            Expr::lam(
                x.clone(),
                Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&n.name)),
            ),
            Expr::Lit(1),
        );
        Expr::lam(n, body)
    }

    #[test]
    fn second_compile_is_a_hit_and_alpha_equal() {
        let cache = OptCache::default();
        let cfg = OptConfig::join_points();

        let mut d1 = Dsl::new();
        let e1 = program(&mut d1);
        let mut s1 = d1.supply;
        let (t1, r1, hit1) =
            optimize_cached(&e1, &d1.data_env, &mut s1, &cfg, false, &cache).unwrap();
        assert!(!hit1);
        assert!(!r1.passes.is_empty());

        // A fresh `Dsl` draws different uniques: textually different,
        // α-equivalent — must hit the same entry.
        let mut d2 = Dsl::new();
        for _ in 0..7 {
            d2.supply.fresh("skew");
        }
        let e2 = program(&mut d2);
        let mut s2 = d2.supply;
        let (t2, r2, hit2) =
            optimize_cached(&e2, &d2.data_env, &mut s2, &cfg, false, &cache).unwrap();
        assert!(hit2, "α-equivalent program must hit");
        assert!(alpha_eq(&t1, &t2));
        assert!(Arc::ptr_eq(&r1, &r2), "hit shares the report allocation");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn hit_advances_the_supply_past_the_producer() {
        let cache = OptCache::default();
        let cfg = OptConfig::join_points();
        let mut d1 = Dsl::new();
        // Skew the producer's supply forward so its high-water mark is
        // strictly above anything a fresh supply has handed out.
        for _ in 0..100 {
            d1.supply.fresh("skew");
        }
        let e1 = program(&mut d1);
        let mut s1 = d1.supply;
        optimize_cached(&e1, &d1.data_env, &mut s1, &cfg, false, &cache).unwrap();
        let producer_high = s1.peek();

        let mut d2 = Dsl::new();
        let e2 = program(&mut d2);
        let mut s2 = d2.supply;
        assert!(s2.peek() < producer_high);
        let (_, _, hit) = optimize_cached(&e2, &d2.data_env, &mut s2, &cfg, false, &cache).unwrap();
        assert!(hit);
        assert!(
            s2.peek() >= producer_high,
            "adopting supply must jump past every name in the cached term"
        );
    }

    #[test]
    fn config_and_mode_changes_miss() {
        let cache = OptCache::default();
        let mut d = Dsl::new();
        let e = program(&mut d);
        let mut s = d.supply.clone();
        let join = OptConfig::join_points();
        let base = OptConfig::baseline();
        optimize_cached(&e, &d.data_env, &mut s, &join, false, &cache).unwrap();
        let (_, _, hit_other_cfg) =
            optimize_cached(&e, &d.data_env, &mut s, &base, false, &cache).unwrap();
        assert!(
            !hit_other_cfg,
            "different OptConfig must not share an entry"
        );
        let (_, _, hit_resilient) =
            optimize_cached(&e, &d.data_env, &mut s, &join, true, &cache).unwrap();
        assert!(!hit_resilient, "strict and resilient runs must not share");
        assert_eq!(cache.stats().misses, 3);
    }

    #[test]
    fn tapped_configs_bypass_the_cache() {
        let cache = OptCache::default();
        let mut d = Dsl::new();
        let e = program(&mut d);
        let mut s = d.supply.clone();
        let tapped = OptConfig::join_points().with_tap(PassTap::new(|_: &PassCtx, r| r));
        assert_eq!(tapped.fingerprint(), None);
        for _ in 0..2 {
            let (_, _, hit) =
                optimize_cached(&e, &d.data_env, &mut s, &tapped, false, &cache).unwrap();
            assert!(!hit);
        }
        let stats = cache.stats();
        assert_eq!((stats.bypasses, stats.entries), (2, 0));
    }

    #[test]
    fn fifo_eviction_respects_the_cap() {
        // One shard, two slots: the third distinct program evicts the
        // first.
        let cache = OptCache::new(1, 2);
        let cfg = OptConfig::none();
        let mut d = Dsl::new();
        let mut s = d.supply.clone();
        let programs: Vec<Expr> = (0..3)
            .map(|i| {
                let x = d.binder("x", Type::Int);
                Expr::lam(x, Expr::Lit(i))
            })
            .collect();
        for p in &programs {
            optimize_cached(p, &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        }
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.evictions), (2, 1));
        // Oldest entry gone: recompiling it misses again.
        let (_, _, hit) =
            optimize_cached(&programs[0], &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        assert!(!hit);
        // Newest still resident.
        let (_, _, hit) =
            optimize_cached(&programs[2], &d.data_env, &mut s, &cfg, false, &cache).unwrap();
        assert!(hit);
    }

    #[test]
    fn config_fingerprint_is_stable_and_discriminating() {
        let a = OptConfig::join_points().fingerprint().unwrap();
        let b = OptConfig::join_points().fingerprint().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, OptConfig::baseline().fingerprint().unwrap());
        assert_ne!(a, OptConfig::none().fingerprint().unwrap());
        assert_ne!(
            a,
            OptConfig::join_points()
                .with_max_passes(3)
                .fingerprint()
                .unwrap()
        );
        assert_ne!(
            a,
            OptConfig::join_points()
                .with_pass_deadline(std::time::Duration::from_millis(50))
                .fingerprint()
                .unwrap()
        );
    }
}
