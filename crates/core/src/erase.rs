//! Erasure to System F (paper Sec. 6, Theorem 5).
//!
//! Every well-typed F_J term is equal (in the equational theory) to a
//! join-free System F term. The construction: first normalize so that
//! every jump is a *tail call* of its join point — the paper's
//! commuting-normal form, reached by iterating `commute` and `abort`,
//! which is exactly what one simplifier round does (its `abort` behaviour
//! discards any evaluation context wrapped around a jump) — then apply
//! `contify` right-to-left: each `join` becomes a `let`-bound function
//! and each jump a saturated call.
//!
//! Zero-parameter join points get a dummy `Unit` parameter, per the
//! paper's footnote: "the dummy unit parameter is not necessary in a lazy
//! language, but it is in a call-by-value language" — adding it keeps the
//! erased program faithful under *all three* of our machine's modes.

use crate::simplify::{simplify_once, SimplOpts};
use crate::OptError;
use fj_ast::{Alt, Binder, DataEnv, Expr, Ident, JoinDef, LetBind, Name, NameSupply, Type};
use fj_check::{type_of, Gamma};
use std::collections::{HashMap, HashSet};

/// Erase all join points and jumps, producing a plain System F term.
///
/// # Errors
///
/// Returns [`OptError`] if normalization or type reconstruction fails, or
/// [`OptError::Internal`] if a jump survives in a non-tail position
/// (which the type system should make impossible).
pub fn erase(e: &Expr, data_env: &DataEnv, supply: &mut NameSupply) -> Result<Expr, OptError> {
    // One simplifier round reaches commuting-normal form: every jump ends
    // up in tail position relative to its join binding.
    let opts = SimplOpts::default();
    let norm = simplify_once(e, data_env, supply, &opts)?;
    debug_assert!(
        is_commuting_normal(&norm),
        "simplifier must establish commuting-normal form:\n{norm}"
    );
    let mut er = Eraser {
        data_env,
        supply,
        types: HashMap::new(),
        nullary: HashSet::new(),
    };
    let erased = er.go(&norm)?;
    if erased.has_join_or_jump() {
        return Err(OptError::Internal(
            "erasure left a join or jump behind".into(),
        ));
    }
    Ok(erased)
}

/// Is every jump in `e` a *tail call* of its join point — i.e. is `e` in
/// the paper's **commuting-normal form** (Sec. 6)? Erasure requires this;
/// one simplifier round establishes it (`commute` + `abort`).
///
/// In tail positions (case branches, let bodies, join bodies and
/// right-hand sides) any jump is fine. Everywhere else (scrutinees,
/// function positions, arguments, lambda bodies) a jump is only
/// acceptable if its target join point is bound *inside* that subtree —
/// jumping to an outer label from there would discard context.
pub fn is_commuting_normal(e: &Expr) -> bool {
    use std::collections::HashSet as Set;

    fn tail(e: &Expr) -> bool {
        match e {
            Expr::Jump(_, _, args, _) => args.iter().all(|a| island(a, &mut Set::new())),
            Expr::Case(s, alts) => island(s, &mut Set::new()) && alts.iter().all(|a| tail(&a.rhs)),
            Expr::Let(bind, body) => {
                bind.pairs().iter().all(|(_, r)| island(r, &mut Set::new())) && tail(body)
            }
            Expr::Join(jb, body) => jb.defs().iter().all(|d| tail(&d.body)) && tail(body),
            Expr::Lam(_, b) | Expr::TyLam(_, b) => island(b, &mut Set::new()),
            Expr::Var(_) | Expr::Lit(_) => true,
            Expr::Prim(_, args) | Expr::Con(_, _, args) => {
                args.iter().all(|a| island(a, &mut Set::new()))
            }
            Expr::App(f, a) => island(f, &mut Set::new()) && island(a, &mut Set::new()),
            Expr::TyApp(f, _) => island(f, &mut Set::new()),
        }
    }

    /// Inside a non-tail subtree: jumps may only target labels bound
    /// within the subtree (`bound`).
    fn island(e: &Expr, bound: &mut Set<Name>) -> bool {
        match e {
            Expr::Var(_) | Expr::Lit(_) => true,
            Expr::Jump(j, _, args, _) => bound.contains(j) && args.iter().all(|a| island(a, bound)),
            Expr::Prim(_, args) | Expr::Con(_, _, args) => args.iter().all(|a| island(a, bound)),
            Expr::Lam(_, b) | Expr::TyLam(_, b) => island(b, bound),
            Expr::App(f, a) => island(f, bound) && island(a, bound),
            Expr::TyApp(f, _) => island(f, bound),
            Expr::Case(s, alts) => island(s, bound) && alts.iter().all(|a| island(&a.rhs, bound)),
            Expr::Let(bind, body) => {
                bind.pairs().iter().all(|(_, r)| island(r, bound)) && island(body, bound)
            }
            Expr::Join(jb, body) => {
                let labels: Vec<Name> = jb.labels().into_iter().cloned().collect();
                let defs_ok = if jb.is_rec() {
                    for l in &labels {
                        bound.insert(l.clone());
                    }
                    jb.defs().iter().all(|d| island(&d.body, bound))
                } else {
                    let ok = jb.defs().iter().all(|d| island(&d.body, bound));
                    for l in &labels {
                        bound.insert(l.clone());
                    }
                    ok
                };
                let body_ok = island(body, bound);
                for l in &labels {
                    bound.remove(l);
                }
                defs_ok && body_ok
            }
        }
    }

    tail(e)
}

fn unit_ty() -> Type {
    Type::con0("Unit")
}

fn unit_val() -> Expr {
    Expr::Con(Ident::new("MkUnit"), vec![], vec![])
}

struct Eraser<'a> {
    data_env: &'a DataEnv,
    supply: &'a mut NameSupply,
    types: HashMap<Name, Type>,
    /// Labels lowered with a dummy unit parameter.
    nullary: HashSet<Name>,
}

impl Eraser<'_> {
    fn record(&mut self, b: &Binder) {
        self.types.insert(b.name.clone(), b.ty.clone());
    }

    fn gamma(&self) -> Gamma {
        let mut g = Gamma::new();
        for (n, t) in &self.types {
            g.bind_var(n.clone(), t.clone());
        }
        g
    }

    fn ty_of(&self, e: &Expr) -> Result<Type, OptError> {
        type_of(e, self.data_env, &self.gamma()).map_err(OptError::Type)
    }

    #[allow(clippy::too_many_lines)]
    fn go(&mut self, e: &Expr) -> Result<Expr, OptError> {
        match e {
            Expr::Var(_) | Expr::Lit(_) => Ok(e.clone()),
            Expr::Prim(op, args) => Ok(Expr::Prim(
                *op,
                args.iter().map(|a| self.go(a)).collect::<Result<_, _>>()?,
            )),
            Expr::Con(c, tys, args) => Ok(Expr::Con(
                c.clone(),
                tys.clone(),
                args.iter().map(|a| self.go(a)).collect::<Result<_, _>>()?,
            )),
            Expr::Lam(b, body) => {
                self.record(b);
                Ok(Expr::lam(b.clone(), self.go(body)?))
            }
            Expr::TyLam(a, body) => Ok(Expr::ty_lam(a.clone(), self.go(body)?)),
            Expr::App(f, a) => Ok(Expr::app(self.go(f)?, self.go(a)?)),
            Expr::TyApp(f, t) => Ok(Expr::ty_app(self.go(f)?, t.clone())),
            Expr::Case(s, alts) => {
                let s2 = self.go(s)?;
                let alts2 = alts
                    .iter()
                    .map(|alt| {
                        for b in &alt.binders {
                            self.record(b);
                        }
                        Ok(Alt {
                            con: alt.con.clone(),
                            binders: alt.binders.clone(),
                            rhs: self.go(&alt.rhs)?,
                        })
                    })
                    .collect::<Result<_, OptError>>()?;
                Ok(Expr::case(s2, alts2))
            }
            Expr::Let(bind, body) => {
                for b in bind.binders() {
                    self.record(b);
                }
                let bind2 = match bind {
                    LetBind::NonRec(b, rhs) => {
                        LetBind::NonRec(b.clone(), Expr::share(self.go(rhs)?))
                    }
                    LetBind::Rec(binds) => LetBind::Rec(
                        binds
                            .iter()
                            .map(|(b, rhs)| Ok((b.clone(), self.go(rhs)?)))
                            .collect::<Result<_, OptError>>()?,
                    ),
                };
                Ok(Expr::Let(bind2, Expr::share(self.go(body)?)))
            }
            Expr::Join(jb, body) => {
                // The functions' shared result type ρ is the type of the
                // join body (rule JBIND forces every RHS to match it).
                // Jump annotations inside make the lenient query total.
                for d in jb.defs() {
                    for p in &d.params {
                        self.record(p);
                    }
                }
                let rho = self.ty_of(body)?;
                // Declare the group's function types before lowering the
                // (possibly mutually recursive) right-hand sides.
                for d in jb.defs() {
                    let fn_ty = self.fn_type(d, &rho);
                    self.types.insert(d.name.clone(), fn_ty);
                    if d.params.is_empty() {
                        self.nullary.insert(d.name.clone());
                    }
                }
                let mut let_binds = Vec::with_capacity(jb.defs().len());
                for d in jb.defs() {
                    let fn_ty = self.types[&d.name].clone();
                    let rhs = self.lower_def(d)?;
                    let_binds.push((Binder::new(d.name.clone(), fn_ty), rhs));
                }
                let body2 = self.go(body)?;
                if jb.is_rec() {
                    Ok(Expr::letrec(let_binds, body2))
                } else {
                    let (b, rhs) = let_binds.into_iter().next().expect("nonrec has one def");
                    Ok(Expr::let1(b, rhs, body2))
                }
            }
            Expr::Jump(j, tys, args, _) => {
                let mut call = Expr::var(j);
                for t in tys {
                    call = Expr::ty_app(call, t.clone());
                }
                if self.nullary.contains(j) {
                    call = Expr::app(call, unit_val());
                } else {
                    for a in args {
                        call = Expr::app(call, self.go(a)?);
                    }
                }
                Ok(call)
            }
        }
    }

    /// `∀a⃗. σ⃗ → ρ` (with a Unit parameter when σ⃗ is empty).
    fn fn_type(&self, d: &JoinDef, rho: &Type) -> Type {
        let param_tys: Vec<Type> = if d.params.is_empty() {
            vec![unit_ty()]
        } else {
            d.params.iter().map(|p| p.ty.clone()).collect()
        };
        let core = Type::funs(param_tys, rho.clone());
        d.ty_params
            .iter()
            .rev()
            .fold(core, |acc, a| Type::forall(a.clone(), acc))
    }

    /// `Λa⃗. λ(x:σ)⃗. body`, with the dummy unit parameter when needed.
    fn lower_def(&mut self, d: &JoinDef) -> Result<Expr, OptError> {
        let body2 = self.go(&d.body)?;
        let params = if d.params.is_empty() {
            vec![Binder::new(self.supply.fresh("unit"), unit_ty())]
        } else {
            d.params.clone()
        };
        let fun_body = Expr::lams(params, body2);
        Ok(d.ty_params
            .iter()
            .rev()
            .fold(fun_body, |acc, a| Expr::ty_lam(a.clone(), acc)))
    }
}
