//! Occurrence analysis.
//!
//! GHC's "occurrence analyser" runs before every simplifier pass; the
//! paper's contification analysis piggy-backs on it (Sec. 7: "we run it
//! frequently, whenever the so-called occurrence analyzer runs"). We track,
//! per binder:
//!
//! * how many syntactic occurrences it has (0 / 1 / many),
//! * whether any occurrence is under a lambda (inlining a once-used binding
//!   into a lambda body can duplicate *work* under call-by-name, so the
//!   simplifier refuses), and
//! * for join labels, how many jumps target them.

use fj_ast::FxHashMap;
use fj_ast::{Expr, LetBind, Name};

/// How often a binder occurs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OccCount {
    /// Never — dead code.
    Dead,
    /// Exactly once.
    Once,
    /// More than once.
    Many,
}

/// Occurrence information for one binder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OccInfo {
    /// Occurrence count.
    pub count: OccCount,
    /// Does any occurrence sit under a lambda (relative to the binding)?
    pub under_lambda: bool,
}

impl OccInfo {
    /// Is it safe (work-wise) to inline a once-used binding?
    pub fn inline_once_safe(&self) -> bool {
        self.count == OccCount::Once && !self.under_lambda
    }
}

/// Occurrence map for every variable and label in a term.
///
/// Binders the analysis walked past get an entry even at zero occurrences;
/// a name with **no entry at all** was not analyzed (e.g. it was freshened
/// into existence mid-pass) and is conservatively reported as
/// [`OccCount::Many`].
#[derive(Clone, Debug, Default)]
pub struct OccMap {
    map: FxHashMap<Name, (usize, bool)>,
}

impl OccMap {
    /// Info for a name (see the type-level note about unanalyzed names).
    pub fn info(&self, n: &Name) -> OccInfo {
        match self.map.get(n) {
            None => OccInfo {
                count: OccCount::Many,
                under_lambda: true,
            },
            Some((0, _)) => OccInfo {
                count: OccCount::Dead,
                under_lambda: false,
            },
            Some((1, l)) => OccInfo {
                count: OccCount::Once,
                under_lambda: *l,
            },
            Some((_, l)) => OccInfo {
                count: OccCount::Many,
                under_lambda: *l,
            },
        }
    }

    /// Raw occurrence count; unanalyzed names report `usize::MAX`.
    pub fn count(&self, n: &Name) -> usize {
        self.map.get(n).map_or(usize::MAX, |(c, _)| *c)
    }

    fn record(&mut self, n: &Name, in_lambda: bool) {
        let e = self.map.entry(n.clone()).or_insert((0, false));
        e.0 += 1;
        e.1 |= in_lambda;
    }

    fn declare(&mut self, n: &Name) {
        self.map.entry(n.clone()).or_insert((0, false));
    }
}

/// Analyze a whole term. Occurrences of both term variables and join
/// labels are recorded; binders themselves are not occurrences.
pub fn analyze(e: &Expr) -> OccMap {
    let mut m = OccMap::default();
    go(e, false, &mut m);
    m
}

fn go(e: &Expr, in_lambda: bool, m: &mut OccMap) {
    match e {
        Expr::Var(x) => m.record(x, in_lambda),
        Expr::Lit(_) => {}
        Expr::Prim(_, args) | Expr::Con(_, _, args) => {
            for a in args {
                go(a, in_lambda, m);
            }
        }
        Expr::Lam(b, body) => {
            m.declare(&b.name);
            go(body, true, m);
        }
        Expr::TyLam(_, body) => go(body, in_lambda, m),
        Expr::App(f, a) => {
            go(f, in_lambda, m);
            go(a, in_lambda, m);
        }
        Expr::TyApp(f, _) => go(f, in_lambda, m),
        Expr::Case(s, alts) => {
            go(s, in_lambda, m);
            for alt in alts {
                for b in &alt.binders {
                    m.declare(&b.name);
                }
                go(&alt.rhs, in_lambda, m);
            }
        }
        Expr::Let(bind, body) => {
            for b in bind.binders() {
                m.declare(&b.name);
            }
            match bind {
                LetBind::NonRec(_, rhs) => go(rhs, in_lambda, m),
                LetBind::Rec(binds) => {
                    // A recursive RHS may run many times; occurrences
                    // inside are work-duplicating to inline into.
                    for (_, rhs) in binds {
                        go(rhs, true, m);
                    }
                }
            }
            go(body, in_lambda, m);
        }
        Expr::Join(jb, body) => {
            for d in jb.defs() {
                m.declare(&d.name);
                for p in &d.params {
                    m.declare(&p.name);
                }
                // A join RHS runs once per jump — for *work*-duplication
                // purposes it behaves like a function body.
                go(&d.body, true, m);
            }
            go(body, in_lambda, m);
        }
        Expr::Jump(j, _, args, _) => {
            m.record(j, in_lambda);
            for a in args {
                go(a, in_lambda, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{Binder, Dsl, JoinDef, PrimOp, Type};

    #[test]
    fn counts_occurrences() {
        let mut d = Dsl::new();
        let x = d.name("x");
        let y = d.name("y");
        let e = Expr::prim2(
            PrimOp::Add,
            Expr::var(&x),
            Expr::prim2(PrimOp::Add, Expr::var(&x), Expr::var(&y)),
        );
        let m = analyze(&e);
        assert_eq!(m.info(&x).count, OccCount::Many);
        assert_eq!(m.info(&y).count, OccCount::Once);
        assert_eq!(m.info(&d.name("zzz")).count, OccCount::Many); // unanalyzed
    }

    #[test]
    fn lambda_marks_work_duplication() {
        let mut d = Dsl::new();
        let x = d.name("x");
        let b = d.binder("b", Type::Int);
        let e = Expr::lam(b, Expr::var(&x));
        let m = analyze(&e);
        let info = m.info(&x);
        assert_eq!(info.count, OccCount::Once);
        assert!(info.under_lambda);
        assert!(!info.inline_once_safe());
    }

    #[test]
    fn join_rhs_counts_as_work_context() {
        let mut d = Dsl::new();
        let x = d.name("x");
        let j = d.name("j");
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::var(&x),
            },
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        let m = analyze(&e);
        // A join RHS may run once per jump: inlining work into it is not
        // "once"-safe.
        assert!(m.info(&x).under_lambda);
        assert_eq!(m.info(&j).count, OccCount::Once);
    }

    #[test]
    fn jumps_count_label_occurrences() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let e = Expr::ite(
            Expr::bool(true),
            Expr::jump(&j, vec![], vec![], Type::Int),
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        let m = analyze(&e);
        assert_eq!(m.info(&j).count, OccCount::Many);
    }

    #[test]
    fn binder_is_not_an_occurrence() {
        let mut d = Dsl::new();
        let b = d.binder("x", Type::Int);
        let name = b.name.clone();
        let e = Expr::lam(b, Expr::Lit(1));
        let m = analyze(&e);
        assert_eq!(m.info(&name).count, OccCount::Dead);
        let _ = Binder::new(d.name("unused"), Type::Int);
    }
}
