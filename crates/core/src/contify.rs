//! Contification (paper Sec. 4, Fig. 5): inferring join points.
//!
//! A `let`-bound function all of whose calls are *saturated tail calls*
//! can be turned into a join point — its calls into jumps — without
//! changing the meaning of the program: when a jump fires, there is
//! nothing on the stack to discard. The paper's algorithm is deliberately
//! simple ("we *only look for tail calls*", unlike Fluet–Weeks or
//! Kennedy); in concert with the simplifier and Float In it covers the
//! same ground as Moby's local CPS conversion.
//!
//! Side conditions, straight from Fig. 5:
//!
//! * every occurrence of `f` (or, for a recursive group, of any `fᵢ`) is a
//!   call with exactly the right number of type and value arguments,
//!   sitting in a **tail position** of the `let` body (for recursive
//!   groups, also of each right-hand side);
//! * `f` does not occur in the arguments of those calls, in case
//!   scrutinees, in other bindings' right-hand sides, or under lambdas;
//! * the result type of `f`'s body equals the type of the `let` body —
//!   contification "can fail to occur if some function f is polymorphic
//!   in its return type".

use crate::OptError;
use fj_ast::{
    mentions_any, occurs_free, Alt, Binder, DataEnv, Expr, JoinBind, JoinDef, LetBind, Name,
    SpineArg, Type,
};
use fj_check::{type_of, Gamma};

/// Run contification over a whole term, bottom-up, converting every
/// eligible `let` into a `join`.
///
/// # Errors
///
/// Returns [`OptError::Type`] if type reconstruction fails (ill-typed
/// input).
pub fn contify(e: &Expr, data_env: &DataEnv) -> Result<Expr, OptError> {
    let mut c = Contifier {
        data_env,
        gamma: Gamma::new(),
        converted: 0,
    };
    c.go(e)
}

/// Like [`contify`], also reporting how many bindings were converted.
///
/// # Errors
///
/// As [`contify`].
pub fn contify_counting(e: &Expr, data_env: &DataEnv) -> Result<(Expr, usize), OptError> {
    let mut c = Contifier {
        data_env,
        gamma: Gamma::new(),
        converted: 0,
    };
    let out = c.go(e)?;
    Ok((out, c.converted))
}

/// The η-shape of a candidate: `Λa⃗. λ(x:σ)⃗. u`.
struct FunShape {
    ty_params: Vec<Name>,
    params: Vec<Binder>,
    body: Expr,
}

fn decompose_fun(rhs: &Expr) -> FunShape {
    let mut ty_params = Vec::new();
    let mut cur = rhs;
    while let Expr::TyLam(a, b) = cur {
        ty_params.push(a.clone());
        cur = b;
    }
    let mut params = Vec::new();
    while let Expr::Lam(b, body) = cur {
        params.push(b.clone());
        cur = body;
    }
    FunShape {
        ty_params,
        params,
        body: cur.clone(),
    }
}

struct Contifier<'a> {
    data_env: &'a DataEnv,
    /// Γ for every binder seen so far, maintained incrementally (binders
    /// are globally unique, so the environment only grows and is never
    /// rebuilt per `ty_of` query).
    gamma: Gamma,
    converted: usize,
}

impl Contifier<'_> {
    fn record(&mut self, b: &Binder) {
        self.gamma.bind_var(b.name.clone(), b.ty.clone());
    }

    fn ty_of(&self, e: &Expr) -> Result<Type, OptError> {
        type_of(e, self.data_env, &self.gamma).map_err(OptError::Type)
    }

    fn go(&mut self, e: &Expr) -> Result<Expr, OptError> {
        match e {
            Expr::Var(_) | Expr::Lit(_) => Ok(e.clone()),
            Expr::Prim(op, args) => Ok(Expr::Prim(
                *op,
                args.iter().map(|a| self.go(a)).collect::<Result<_, _>>()?,
            )),
            Expr::Con(c, tys, args) => Ok(Expr::Con(
                c.clone(),
                tys.clone(),
                args.iter().map(|a| self.go(a)).collect::<Result<_, _>>()?,
            )),
            Expr::Lam(b, body) => {
                self.record(b);
                Ok(Expr::lam(b.clone(), self.go(body)?))
            }
            Expr::TyLam(a, body) => Ok(Expr::ty_lam(a.clone(), self.go(body)?)),
            Expr::App(f, a) => Ok(Expr::app(self.go(f)?, self.go(a)?)),
            Expr::TyApp(f, t) => Ok(Expr::ty_app(self.go(f)?, t.clone())),
            Expr::Case(s, alts) => {
                let s2 = self.go(s)?;
                let alts2 = alts
                    .iter()
                    .map(|alt| {
                        for b in &alt.binders {
                            self.record(b);
                        }
                        Ok(Alt {
                            con: alt.con.clone(),
                            binders: alt.binders.clone(),
                            rhs: self.go(&alt.rhs)?,
                        })
                    })
                    .collect::<Result<_, OptError>>()?;
                Ok(Expr::case(s2, alts2))
            }
            Expr::Join(jb, body) => {
                let mut jb2 = jb.clone();
                for d in jb2.defs_mut() {
                    for p in &d.params {
                        self.record(p);
                    }
                    d.body = self.go(&d.body)?;
                }
                Ok(Expr::Join(jb2, Expr::share(self.go(body)?)))
            }
            Expr::Jump(j, tys, args, res) => Ok(Expr::Jump(
                j.clone(),
                tys.clone(),
                args.iter().map(|a| self.go(a)).collect::<Result<_, _>>()?,
                res.clone(),
            )),
            Expr::Let(bind, body) => {
                for b in bind.binders() {
                    self.record(b);
                }
                // Children first: inner contifications can expose outer ones.
                let bind2 = match bind {
                    LetBind::NonRec(b, rhs) => {
                        LetBind::NonRec(b.clone(), Expr::share(self.go(rhs)?))
                    }
                    LetBind::Rec(binds) => LetBind::Rec(
                        binds
                            .iter()
                            .map(|(b, rhs)| Ok((b.clone(), self.go(rhs)?)))
                            .collect::<Result<_, OptError>>()?,
                    ),
                };
                let body2 = self.go(body)?;
                self.try_contify(&bind2, &body2)
            }
        }
    }

    fn try_contify(&mut self, bind: &LetBind, body: &Expr) -> Result<Expr, OptError> {
        match bind {
            LetBind::NonRec(b, rhs) => {
                let shape = decompose_fun(rhs);
                // Only functions are candidates (a 0-ary "join" would
                // trade call-by-need sharing for re-evaluation).
                if shape.params.is_empty() {
                    return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                }
                for p in &shape.params {
                    self.record(p);
                }
                // f must not occur in its own RHS (non-recursive).
                if occurs_free(&b.name, rhs) {
                    return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                }
                let Some(res_ty) = self.contifiable_result_ty(
                    &[(b.name.clone(), shape.ty_params.len(), shape.params.len())],
                    std::slice::from_ref(&shape.body),
                    body,
                )?
                else {
                    return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                };
                let targets = Targets::new(
                    vec![(b.name.clone(), shape.ty_params.len(), shape.params.len())],
                    res_ty,
                );
                let Some(new_body) = tailify(body, &targets) else {
                    return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                };
                self.converted += 1;
                let def = JoinDef {
                    name: b.name.clone(),
                    ty_params: shape.ty_params,
                    params: shape.params,
                    body: shape.body,
                };
                Ok(Expr::join1(def, new_body))
            }
            LetBind::Rec(binds) => {
                let shapes: Vec<(Name, FunShape)> = binds
                    .iter()
                    .map(|(b, rhs)| (b.name.clone(), decompose_fun(rhs)))
                    .collect();
                if shapes.iter().any(|(_, s)| s.params.is_empty()) {
                    return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                }
                for (_, s) in &shapes {
                    for p in &s.params {
                        self.record(p);
                    }
                }
                let arities: Vec<(Name, usize, usize)> = shapes
                    .iter()
                    .map(|(n, s)| (n.clone(), s.ty_params.len(), s.params.len()))
                    .collect();
                let rhs_bodies: Vec<Expr> = shapes.iter().map(|(_, s)| s.body.clone()).collect();
                let Some(res_ty) = self.contifiable_result_ty(&arities, &rhs_bodies, body)? else {
                    return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                };
                let targets = Targets::new(arities, res_ty);
                // Every RHS body and the let body must tailify.
                let mut new_defs = Vec::with_capacity(shapes.len());
                for (name, shape) in shapes {
                    let Some(new_rhs_body) = tailify(&shape.body, &targets) else {
                        return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                    };
                    new_defs.push(JoinDef {
                        name,
                        ty_params: shape.ty_params,
                        params: shape.params,
                        body: new_rhs_body,
                    });
                }
                let Some(new_body) = tailify(body, &targets) else {
                    return Ok(Expr::Let(bind.clone(), Expr::share(body.clone())));
                };
                self.converted += 1;
                Ok(Expr::Join(JoinBind::Rec(new_defs), Expr::share(new_body)))
            }
        }
    }

    /// The Fig. 5 typing proviso: each candidate's body type must equal the
    /// `let` body's type (else the function is "polymorphic in its return
    /// type" relative to the context and cannot be a join point). Returns
    /// the shared result type, or `None` if the condition fails.
    ///
    /// Candidates with polymorphic parameters are typed with their own
    /// type variables in scope; `type_of` is lenient about those.
    fn contifiable_result_ty(
        &mut self,
        arities: &[(Name, usize, usize)],
        rhs_bodies: &[Expr],
        body: &Expr,
    ) -> Result<Option<Type>, OptError> {
        let _ = arities;
        let body_ty = match self.ty_of(body) {
            Ok(t) => t,
            Err(_) => return Ok(None),
        };
        for rhs_body in rhs_bodies {
            match self.ty_of(rhs_body) {
                Ok(t) if t.alpha_eq(&body_ty) => {}
                _ => return Ok(None),
            }
        }
        Ok(Some(body_ty))
    }
}

struct Targets {
    /// (name, number of type params, number of value params).
    arities: Vec<(Name, usize, usize)>,
    /// The candidate names alone, for occurrence scans.
    names: Vec<Name>,
    /// Result-type annotation for the new jumps.
    res_ty: Type,
}

impl Targets {
    fn new(arities: Vec<(Name, usize, usize)>, res_ty: Type) -> Targets {
        let names = arities.iter().map(|(n, _, _)| n.clone()).collect();
        Targets {
            arities,
            names,
            res_ty,
        }
    }

    fn arity_of(&self, n: &Name) -> Option<(usize, usize)> {
        self.arities
            .iter()
            .find(|(m, _, _)| m == n)
            .map(|(_, t, v)| (*t, *v))
    }

    fn mentions(&self, e: &Expr) -> bool {
        // Short-circuiting scan; no free-variable set per query.
        mentions_any(e, &self.names)
    }
}

/// Match `f @φ₁…@φₖ e₁…eₘ` with exactly the expected arity.
fn match_call(e: &Expr, targets: &Targets) -> Option<(Name, Vec<Type>, Vec<Expr>)> {
    let (head, spine) = e.collect_app_spine();
    let Expr::Var(f) = head else { return None };
    let (n_ty, n_val) = targets.arity_of(f)?;
    if spine.len() != n_ty + n_val {
        return None;
    }
    let mut tys = Vec::with_capacity(n_ty);
    let mut args = Vec::with_capacity(n_val);
    for (i, s) in spine.into_iter().enumerate() {
        match s {
            SpineArg::Ty(t) if i < n_ty => tys.push(t.clone()),
            SpineArg::Term(a) if i >= n_ty => args.push(a.clone()),
            _ => return None,
        }
    }
    Some((f.clone(), tys, args))
}

/// The paper's `tail` function: walk the tail contexts of `e`, turning
/// saturated calls to the targets into jumps; fail (`None`) if any target
/// occurs anywhere else.
fn tailify(e: &Expr, targets: &Targets) -> Option<Expr> {
    if let Some((f, tys, args)) = match_call(e, targets) {
        // Arguments must not mention any target (typing forbids it anyway).
        if args.iter().any(|a| targets.mentions(a)) {
            return None;
        }
        return Some(Expr::jump(&f, tys, args, targets.res_ty.clone()));
    }
    match e {
        Expr::Case(s, alts) => {
            if targets.mentions(s) {
                return None;
            }
            let alts2 = alts
                .iter()
                .map(|a| {
                    Some(Alt {
                        con: a.con.clone(),
                        binders: a.binders.clone(),
                        rhs: tailify(&a.rhs, targets)?,
                    })
                })
                .collect::<Option<Vec<_>>>()?;
            Some(Expr::case((**s).clone(), alts2))
        }
        Expr::Let(bind, body) => {
            for (_, rhs) in bind.pairs() {
                if targets.mentions(rhs) {
                    return None;
                }
            }
            Some(Expr::Let(
                bind.clone(),
                Expr::share(tailify(body, targets)?),
            ))
        }
        Expr::Join(jb, body) => {
            let mut jb2 = jb.clone();
            for d in jb2.defs_mut() {
                d.body = tailify(&d.body, targets)?;
            }
            Some(Expr::Join(jb2, Expr::share(tailify(body, targets)?)))
        }
        other => {
            if targets.mentions(other) {
                None
            } else {
                Some(other.clone())
            }
        }
    }
}
