//! The optimization pipeline: pass ordering, presets, and Lint-between-
//! passes (paper Sec. 7).
//!
//! Two presets reproduce the paper's experimental conditions:
//!
//! * [`OptConfig::join_points`] — the paper's compiler: Float In exposes
//!   tail calls, contification turns them into `join`s, and the
//!   simplifier *preserves and exploits* them (`jfloat`/`abort`).
//! * [`OptConfig::baseline`] — GHC before the paper: the optimizer never
//!   creates or exploits join points (shared contexts become `let`-bound
//!   functions), and contification runs only **once, at the very end** —
//!   modelling the back end that "already recognises join points … and
//!   compiles them efficiently" but cannot stop earlier passes from
//!   destroying the opportunities.

use crate::contify::contify_counting;
use crate::cse::cse;
use crate::float_in::float_in_counting;
use crate::float_out::float_out_counting;
use crate::simplify::{simplify_once_stats, SimplOpts};
use crate::stats::{Census, PassStats, PipelineReport, RewriteStats};
use crate::OptError;
use fj_ast::{DataEnv, Expr, NameSupply};
use fj_check::lint;
use std::time::Instant;

/// One pipeline pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// One simplifier round (β, case-of-case, inlining, jfloat, abort, …).
    Simplify,
    /// Contification: infer join points from tail-called `let`s.
    Contify,
    /// Float `let` bindings inward.
    FloatIn,
    /// Float `let` bindings outward past lambdas.
    FloatOut,
    /// Common-subexpression elimination (Sec. 8's direct-style example).
    Cse,
}

impl Pass {
    /// Stable pass name, as it appears in [`PassStats::pass`] and Lint
    /// failures.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Simplify => "simplify",
            Pass::Contify => "contify",
            Pass::FloatIn => "float-in",
            Pass::FloatOut => "float-out",
            Pass::Cse => "cse",
        }
    }
}

/// A pipeline: the pass list plus simplifier options.
#[derive(Clone, Debug)]
pub struct OptConfig {
    /// Passes, in order.
    pub passes: Vec<Pass>,
    /// Simplifier tuning (including the join-points switch).
    pub simpl: SimplOpts,
    /// Lint after every pass, failing fast with the pass name.
    pub lint_between: bool,
}

impl OptConfig {
    /// The paper's full pipeline with join points preserved and exploited.
    pub fn join_points() -> Self {
        let round = [Pass::FloatIn, Pass::Contify, Pass::Simplify];
        let mut passes = Vec::new();
        for _ in 0..3 {
            passes.extend_from_slice(&round);
        }
        passes.push(Pass::FloatOut);
        passes.extend_from_slice(&round);
        OptConfig {
            passes,
            simpl: SimplOpts::default(),
            lint_between: cfg!(debug_assertions),
        }
    }

    /// GHC-before-the-paper: join-unaware optimization, with join points
    /// recognized only at "code generation" (the trailing contify).
    pub fn baseline() -> Self {
        let mut passes = vec![
            Pass::FloatIn,
            Pass::Simplify,
            Pass::FloatIn,
            Pass::Simplify,
            Pass::FloatOut,
            Pass::FloatIn,
            Pass::Simplify,
        ];
        passes.push(Pass::Contify); // back-end join detection only
        OptConfig {
            passes,
            simpl: SimplOpts::baseline(),
            lint_between: cfg!(debug_assertions),
        }
    }

    /// No optimization at all (still contifies once, as every back end
    /// including the baseline does).
    pub fn none() -> Self {
        OptConfig {
            passes: vec![Pass::Contify],
            simpl: SimplOpts::baseline(),
            lint_between: cfg!(debug_assertions),
        }
    }

    /// The join-points pipeline with a CSE round before the final
    /// simplification (the Sec. 8 direct-style bonus pass).
    pub fn join_points_with_cse() -> Self {
        let mut cfg = Self::join_points();
        let at = cfg.passes.len().saturating_sub(3);
        cfg.passes.insert(at, Pass::Cse);
        cfg
    }

    /// Ablation helper: the join-points pipeline minus one ingredient.
    pub fn join_points_without(pass: Pass) -> Self {
        let mut cfg = Self::join_points();
        cfg.passes.retain(|p| *p != pass);
        cfg
    }

    /// Toggle lint-between-passes.
    pub fn with_lint(mut self, on: bool) -> Self {
        self.lint_between = on;
        self
    }
}

/// What the pipeline did, for reporting.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Names of the passes that ran, in order.
    pub passes_run: Vec<&'static str>,
    /// Term size before optimization.
    pub size_before: usize,
    /// Term size after optimization.
    pub size_after: usize,
}

/// Run a pipeline over a closed, well-typed term.
///
/// # Errors
///
/// Returns [`OptError`] on a pass failure, or
/// [`OptError::LintAfterPass`] when `lint_between` is on and a pass broke
/// the typing discipline (the paper's "forensic" use of Core Lint).
pub fn optimize(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
) -> Result<Expr, OptError> {
    optimize_with_report(e, data_env, supply, cfg).map(|(e, _)| e)
}

/// As [`optimize`], also returning [`OptStats`].
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_stats(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
) -> Result<(Expr, OptStats), OptError> {
    let (out, report) = optimize_with_report(e, data_env, supply, cfg)?;
    let stats = OptStats {
        passes_run: report.passes.iter().map(|p| p.pass).collect(),
        size_before: report.census_before.size,
        size_after: report.census_after.size,
    };
    Ok((out, stats))
}

/// Run one pass over a term, returning the output and the rewrite
/// counters for that pass.
///
/// This is the unit of both [`optimize_with_report`] and the testkit's
/// per-pass differential oracle: the same `(Expr, RewriteStats)` step,
/// whether it is driven by a pipeline or checked one pass at a time.
///
/// # Errors
///
/// Returns [`OptError`] when the pass itself fails (e.g. contification on
/// an ill-typed term).
pub fn apply_pass(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    pass: Pass,
    simpl: &SimplOpts,
) -> Result<(Expr, RewriteStats), OptError> {
    let mut rw = RewriteStats::default();
    let out = match pass {
        Pass::Simplify => simplify_once_stats(e, data_env, supply, simpl, &mut rw)?,
        Pass::Contify => {
            let (out, n) = contify_counting(e, data_env)?;
            rw.contified = n as u64;
            out
        }
        Pass::FloatIn => {
            let (out, n) = float_in_counting(e);
            rw.floated_in = n;
            out
        }
        Pass::FloatOut => {
            let (out, n) = float_out_counting(e);
            rw.floated_out = n;
            out
        }
        Pass::Cse => {
            let outcome = cse(e, supply);
            rw.cse_hits = outcome.replaced as u64;
            outcome.expr
        }
    };
    Ok((out, rw))
}

/// As [`optimize`], also returning the full per-pass [`PipelineReport`]:
/// rewrite-firing counters, a term census after every pass, and wall
/// times. This is the observability entry point behind `fj report`.
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_report(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
) -> Result<(Expr, PipelineReport), OptError> {
    let started = Instant::now();
    let mut report = PipelineReport {
        census_before: Census::of(e),
        ..PipelineReport::default()
    };
    let mut cur = e.clone();
    for pass in &cfg.passes {
        let pass_started = Instant::now();
        let (next, rewrites) = apply_pass(&cur, data_env, supply, *pass, &cfg.simpl)?;
        cur = next;
        report.passes.push(PassStats {
            pass: pass.name(),
            rewrites,
            census_after: Census::of(&cur),
            wall: pass_started.elapsed(),
        });
        if cfg.lint_between {
            if let Err(err) = lint(&cur, data_env) {
                return Err(OptError::LintAfterPass {
                    pass: pass.name(),
                    error: Box::new(err),
                    dump: cur.to_string(),
                });
            }
        }
    }
    report.census_after = Census::of(&cur);
    report.wall = started.elapsed();
    Ok((cur, report))
}
