//! The optimization pipeline: pass ordering, presets, and Lint-between-
//! passes (paper Sec. 7).
//!
//! Two presets reproduce the paper's experimental conditions:
//!
//! * [`OptConfig::join_points`] — the paper's compiler: Float In exposes
//!   tail calls, contification turns them into `join`s, and the
//!   simplifier *preserves and exploits* them (`jfloat`/`abort`).
//! * [`OptConfig::baseline`] — GHC before the paper: the optimizer never
//!   creates or exploits join points (shared contexts become `let`-bound
//!   functions), and contification runs only **once, at the very end** —
//!   modelling the back end that "already recognises join points … and
//!   compiles them efficiently" but cannot stop earlier passes from
//!   destroying the opportunities.

use crate::contify::contify_counting;
use crate::cse::cse;
use crate::float_in::float_in_counting;
use crate::float_out::float_out_counting;
use crate::guard::{run_pass_guarded, PassTap, RollbackReason};
use crate::simplify::{simplify_once_changed, SimplOpts};
use crate::stats::{Census, PassOutcome, PassStats, PipelineReport, RewriteStats};
use crate::OptError;
use fj_ast::{DataEnv, Expr, NameSupply};
use fj_check::lint;
use std::time::{Duration, Instant};

/// One pipeline pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// One simplifier round (β, case-of-case, inlining, jfloat, abort, …).
    Simplify,
    /// Contification: infer join points from tail-called `let`s.
    Contify,
    /// Float `let` bindings inward.
    FloatIn,
    /// Float `let` bindings outward past lambdas.
    FloatOut,
    /// Common-subexpression elimination (Sec. 8's direct-style example).
    Cse,
}

impl Pass {
    /// Stable pass name, as it appears in [`PassStats::pass`] and Lint
    /// failures.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Simplify => "simplify",
            Pass::Contify => "contify",
            Pass::FloatIn => "float-in",
            Pass::FloatOut => "float-out",
            Pass::Cse => "cse",
        }
    }
}

/// A pipeline: the pass list, simplifier options, and pass guards.
#[derive(Clone, Debug)]
pub struct OptConfig {
    /// Passes, in order.
    pub passes: Vec<Pass>,
    /// Simplifier tuning (including the join-points switch).
    pub simpl: SimplOpts,
    /// Lint after every pass, failing fast with the pass name. The
    /// resilient driver lints after every pass regardless — rollback is
    /// meaningless without detection.
    pub lint_between: bool,
    /// Per-pass wall-clock deadline. When set, each pass runs on a guard
    /// thread that is abandoned on timeout (fail-fast: [`OptError::Budget`];
    /// resilient: rollback). Default `None`: passes run inline, un-timed.
    pub pass_deadline: Option<Duration>,
    /// Maximum per-pass term-size growth factor. A pass whose output
    /// exceeds `max(before * factor, GROWTH_FLOOR)` nodes fails its budget.
    /// Default `None`: unlimited.
    pub max_growth: Option<f64>,
    /// Maximum number of passes actually executed; the rest of the
    /// pipeline is skipped (resilient) or errors (fail-fast). Default
    /// `None`: run everything.
    pub max_passes: Option<usize>,
    /// Test seam interposed on every pass output (fault injection).
    /// Default `None`.
    pub tap: Option<PassTap>,
}

/// Small terms get this much absolute headroom before
/// [`OptConfig::max_growth`] kicks in, so a 4-node term can still be
/// legitimately inlined into a 40-node one.
pub const GROWTH_FLOOR: usize = 256;

impl OptConfig {
    fn from_parts(passes: Vec<Pass>, simpl: SimplOpts) -> Self {
        OptConfig {
            passes,
            simpl,
            lint_between: cfg!(debug_assertions),
            pass_deadline: None,
            max_growth: None,
            max_passes: None,
            tap: None,
        }
    }

    /// The paper's full pipeline with join points preserved and exploited.
    pub fn join_points() -> Self {
        let round = [Pass::FloatIn, Pass::Contify, Pass::Simplify];
        let mut passes = Vec::new();
        for _ in 0..3 {
            passes.extend_from_slice(&round);
        }
        passes.push(Pass::FloatOut);
        passes.extend_from_slice(&round);
        Self::from_parts(passes, SimplOpts::default())
    }

    /// GHC-before-the-paper: join-unaware optimization, with join points
    /// recognized only at "code generation" (the trailing contify).
    pub fn baseline() -> Self {
        let mut passes = vec![
            Pass::FloatIn,
            Pass::Simplify,
            Pass::FloatIn,
            Pass::Simplify,
            Pass::FloatOut,
            Pass::FloatIn,
            Pass::Simplify,
        ];
        passes.push(Pass::Contify); // back-end join detection only
        Self::from_parts(passes, SimplOpts::baseline())
    }

    /// No optimization at all (still contifies once, as every back end
    /// including the baseline does).
    pub fn none() -> Self {
        Self::from_parts(vec![Pass::Contify], SimplOpts::baseline())
    }

    /// The join-points pipeline with a CSE round before the final
    /// simplification (the Sec. 8 direct-style bonus pass).
    pub fn join_points_with_cse() -> Self {
        let mut cfg = Self::join_points();
        let at = cfg.passes.len().saturating_sub(3);
        cfg.passes.insert(at, Pass::Cse);
        cfg
    }

    /// Ablation helper: the join-points pipeline minus one ingredient.
    pub fn join_points_without(pass: Pass) -> Self {
        let mut cfg = Self::join_points();
        cfg.passes.retain(|p| *p != pass);
        cfg
    }

    /// Toggle lint-between-passes.
    pub fn with_lint(mut self, on: bool) -> Self {
        self.lint_between = on;
        self
    }

    /// Set the per-pass wall-clock deadline.
    pub fn with_pass_deadline(mut self, limit: Duration) -> Self {
        self.pass_deadline = Some(limit);
        self
    }

    /// Set the per-pass term-size growth budget (a factor over the
    /// pre-pass size, with [`GROWTH_FLOOR`] absolute headroom).
    pub fn with_max_growth(mut self, factor: f64) -> Self {
        self.max_growth = Some(factor);
        self
    }

    /// Cap the number of passes actually executed.
    pub fn with_max_passes(mut self, n: usize) -> Self {
        self.max_passes = Some(n);
        self
    }

    /// Interpose a [`PassTap`] on every pass output (fault injection).
    pub fn with_tap(mut self, tap: PassTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// A stable 64-bit digest of everything in this configuration that can
    /// influence the optimized term — the configuration component of the
    /// [`OptCache`](crate::cache::OptCache) key.
    ///
    /// Returns `None` when a [`PassTap`] is installed: taps are opaque
    /// functions (the fault-injection seam), so two configs with taps can
    /// never be proven equivalent and tapped pipelines must bypass the
    /// cache entirely.
    pub fn fingerprint(&self) -> Option<u64> {
        use std::hash::{Hash, Hasher};
        if self.tap.is_some() {
            return None;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.passes.len().hash(&mut h);
        for p in &self.passes {
            p.name().hash(&mut h);
        }
        self.simpl.join_points.hash(&mut h);
        self.simpl.inline_size.hash(&mut h);
        self.simpl.dup_size.hash(&mut h);
        self.simpl.max_rounds.hash(&mut h);
        self.lint_between.hash(&mut h);
        self.pass_deadline.hash(&mut h);
        self.max_growth.map(f64::to_bits).hash(&mut h);
        self.max_passes.hash(&mut h);
        Some(h.finish())
    }
}

/// What the pipeline did, for reporting.
#[derive(Clone, Debug, Default)]
pub struct OptStats {
    /// Names of the passes that ran, in order.
    pub passes_run: Vec<&'static str>,
    /// Term size before optimization.
    pub size_before: usize,
    /// Term size after optimization.
    pub size_after: usize,
}

/// Run a pipeline over a closed, well-typed term.
///
/// # Errors
///
/// Returns [`OptError`] on a pass failure, or
/// [`OptError::LintAfterPass`] when `lint_between` is on and a pass broke
/// the typing discipline (the paper's "forensic" use of Core Lint).
pub fn optimize(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
) -> Result<Expr, OptError> {
    optimize_with_report(e, data_env, supply, cfg).map(|(e, _)| e)
}

/// As [`optimize`], also returning [`OptStats`].
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_stats(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
) -> Result<(Expr, OptStats), OptError> {
    let (out, report) = optimize_with_report(e, data_env, supply, cfg)?;
    let stats = OptStats {
        passes_run: report.passes.iter().map(|p| p.pass).collect(),
        size_before: report.census_before.size,
        size_after: report.census_after.size,
    };
    Ok((out, stats))
}

/// Run one pass over a term, returning the output, the rewrite counters
/// for that pass, and whether the pass changed the term at all.
///
/// This is the unit of both [`optimize_with_report`] and the testkit's
/// per-pass differential oracle: the same `(Expr, RewriteStats, bool)`
/// step, whether it is driven by a pipeline or checked one pass at a time.
///
/// The `changed` flag is an explicit no-change witness, *not*
/// `rewrites.total() > 0`: the simplifier can rewrite without firing a
/// counter (trivial-atom substitution), so the flag is tracked separately.
/// `changed == false` guarantees the output term is the input term, which
/// lets the driver skip re-lint, census, and repeat runs of the pass.
///
/// # Errors
///
/// Returns [`OptError`] when the pass itself fails (e.g. contification on
/// an ill-typed term).
pub fn apply_pass(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    pass: Pass,
    simpl: &SimplOpts,
) -> Result<(Expr, RewriteStats, bool), OptError> {
    let mut rw = RewriteStats::default();
    let (out, changed) = match pass {
        Pass::Simplify => simplify_once_changed(e, data_env, supply, simpl, &mut rw)?,
        Pass::Contify => {
            let (out, n) = contify_counting(e, data_env)?;
            rw.contified = n as u64;
            (out, n > 0)
        }
        Pass::FloatIn => {
            let (out, n) = float_in_counting(e);
            rw.floated_in = n;
            (out, n > 0)
        }
        Pass::FloatOut => {
            let (out, n) = float_out_counting(e);
            rw.floated_out = n;
            (out, n > 0)
        }
        Pass::Cse => {
            let outcome = cse(e, supply);
            rw.cse_hits = outcome.replaced as u64;
            let changed = outcome.replaced > 0;
            (outcome.expr, changed)
        }
    };
    Ok((out, rw, changed))
}

/// As [`optimize`], also returning the full per-pass [`PipelineReport`]:
/// rewrite-firing counters, a term census after every pass, and wall
/// times. This is the observability entry point behind `fj report`.
///
/// # Errors
///
/// As [`optimize`].
pub fn optimize_with_report(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
) -> Result<(Expr, PipelineReport), OptError> {
    run_pipeline(e, data_env, supply, cfg, Recovery::FailFast)
}

/// Run a pipeline with graceful degradation: every pass runs under a guard
/// (panic isolation, optional deadline, growth and pass budgets, lint
/// after every pass), and any failure rolls the term back to its pre-pass
/// state and continues with the remaining passes. A misbehaving pass costs
/// one optimization opportunity, not the compilation.
///
/// Each pass's fate is recorded as a [`PassOutcome`] in the returned
/// [`PipelineReport`]; the output term is always well-typed if the input
/// was (only linted pass outputs are ever committed).
///
/// # Errors
///
/// Never fails today (every per-pass failure becomes a rollback); the
/// `Result` is kept so the signature can survive future fatal conditions.
pub fn optimize_resilient(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
) -> Result<(Expr, PipelineReport), OptError> {
    run_pipeline(e, data_env, supply, cfg, Recovery::RollBack)
}

/// What the driver does when a pass fails its guard.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Recovery {
    /// Abort the whole pipeline with an [`OptError`] (strict `optimize`).
    FailFast,
    /// Discard the pass output, keep the pre-pass term, continue.
    RollBack,
}

fn rolled_back(
    pass: &'static str,
    census: Census,
    wall: std::time::Duration,
    reason: RollbackReason,
) -> PassStats {
    PassStats {
        pass,
        rewrites: RewriteStats::default(),
        census_after: census,
        wall,
        outcome: PassOutcome::RolledBack(reason),
    }
}

/// The one pipeline driver: [`optimize_with_report`] is `FailFast`,
/// [`optimize_resilient`] is `RollBack`. Strict mode with no deadline and
/// no tap runs passes inline (panics propagate exactly as before); any
/// other combination routes through the guard.
fn run_pipeline(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
    recovery: Recovery,
) -> Result<(Expr, PipelineReport), OptError> {
    let started = Instant::now();
    let mut report = PipelineReport {
        census_before: Census::of(e),
        ..PipelineReport::default()
    };
    // Cheap under subtree sharing: the top node is cloned, children are
    // refcount bumps — this is also the resilient mode's O(1) rollback
    // snapshot (on rollback `cur` simply stays what it was).
    let mut cur = e.clone();
    // The census of `cur`, reused verbatim for passes that change nothing.
    let mut census = report.census_before;
    // Rollback without detection is meaningless: resilient mode always
    // lints pass outputs, whatever `lint_between` says.
    let lint_after = cfg.lint_between || recovery == Recovery::RollBack;
    let needs_guard =
        recovery == Recovery::RollBack || cfg.pass_deadline.is_some() || cfg.tap.is_some();
    // A tap may rewrite pass output arbitrarily, so its `changed` flag is
    // not a no-change witness; disable every skip fast path under taps.
    let trust_changed = cfg.tap.is_none();
    // Pass kinds proven to be no-ops on the current term. Re-running one
    // before anything else changes the term is pure waste: passes are
    // deterministic functions of the term, so it would report no-change
    // again. Cleared whenever a pass commits a new term.
    let mut noop_passes: Vec<Pass> = Vec::new();
    let mut executed = 0usize;
    for (index, pass) in cfg.passes.iter().enumerate() {
        let pass_started = Instant::now();
        if let Some(max_passes) = cfg.max_passes {
            if executed >= max_passes {
                let reason = RollbackReason::PassBudget { max_passes };
                match recovery {
                    Recovery::FailFast => return Err(reason.into_opt_error(pass.name())),
                    Recovery::RollBack => {
                        report.passes.push(rolled_back(
                            pass.name(),
                            census,
                            Duration::ZERO,
                            reason,
                        ));
                        continue;
                    }
                }
            }
        }
        if trust_changed && noop_passes.contains(pass) {
            report.passes.push(PassStats {
                pass: pass.name(),
                rewrites: RewriteStats::default(),
                census_after: census,
                wall: pass_started.elapsed(),
                outcome: PassOutcome::Applied,
            });
            continue;
        }
        executed += 1;
        let ran = if needs_guard {
            run_pass_guarded(
                &cur,
                data_env,
                supply,
                *pass,
                &cfg.simpl,
                index,
                cfg.pass_deadline,
                cfg.tap.as_ref(),
            )
        } else {
            apply_pass(&cur, data_env, supply, *pass, &cfg.simpl)
                .map_err(|err| RollbackReason::PassError(Box::new(err)))
        };
        let checked = ran.and_then(|(next, rw, changed)| {
            debug_assert!(
                changed || next == cur,
                "pass `{}` reported no-change but rewrote the term",
                pass.name()
            );
            if trust_changed && !changed {
                // `changed == false` witnesses output ≡ input: the term was
                // linted when it was committed, its size didn't grow, and
                // its census is the one we already have.
                return Ok((None, rw));
            }
            if let Some(factor) = cfg.max_growth {
                let (before, after) = (cur.size(), next.size());
                let allowed = (before as f64 * factor).max(GROWTH_FLOOR as f64);
                if after as f64 > allowed {
                    return Err(RollbackReason::GrowthBudget {
                        before,
                        after,
                        limit: factor,
                    });
                }
            }
            if lint_after {
                if let Err(err) = lint(&next, data_env) {
                    return Err(RollbackReason::LintViolation(Box::new(
                        OptError::LintAfterPass {
                            pass: pass.name(),
                            error: Box::new(err),
                            dump: next.to_string(),
                        },
                    )));
                }
            }
            Ok((Some(next), rw))
        });
        match checked {
            Ok((committed, rewrites)) => {
                match committed {
                    Some(next) => {
                        cur = next;
                        census = Census::of(&cur);
                        noop_passes.clear();
                    }
                    None => noop_passes.push(*pass),
                }
                report.passes.push(PassStats {
                    pass: pass.name(),
                    rewrites,
                    census_after: census,
                    wall: pass_started.elapsed(),
                    outcome: PassOutcome::Applied,
                });
            }
            Err(reason) => match recovery {
                Recovery::FailFast => return Err(reason.into_opt_error(pass.name())),
                Recovery::RollBack => {
                    report.passes.push(rolled_back(
                        pass.name(),
                        census,
                        pass_started.elapsed(),
                        reason,
                    ));
                }
            },
        }
    }
    report.census_after = census;
    report.wall = started.elapsed();
    report.leaked_workers = crate::guard::leaked_guard_workers();
    Ok((cur, report))
}
