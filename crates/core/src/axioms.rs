//! The equational theory of System F_J (Fig. 4 of the paper), as explicit
//! single-step rewrites.
//!
//! The Simplifier ([`crate::simplify`]) applies these rules wholesale via
//! its continuation-threading traversal; this module exposes them one at a
//! time, in the paper's vocabulary, so the metatheory tests can check each
//! axiom's observational soundness (Prop. 3) directly against the abstract
//! machine, and so readers can match code to figure line by line.
//!
//! Each function returns `Some(rewritten)` when its left-hand side matches
//! and the side conditions hold, `None` otherwise.

use fj_ast::{
    free_labels, free_vars, subst_terms, subst_tys_in_expr, Alt, Binder, Expr, JoinBind, LetBind,
    Name, NameSupply, Type,
};

/// One evaluation-context frame `F` (Fig. 1): the shapes an `E` is built
/// from, minus `join` frames (handled by [`jfloat`] itself).
#[derive(Clone, Debug)]
pub enum EFrame {
    /// `□ e` — applied function.
    AppArg(Expr),
    /// `□ τ` — instantiated polymorphism.
    TyArg(Type),
    /// `case □ of alts` — case scrutinee.
    Case(Vec<Alt>),
}

impl EFrame {
    /// Plug an expression into the frame's hole.
    pub fn plug(&self, e: Expr) -> Expr {
        match self {
            EFrame::AppArg(a) => Expr::app(e, a.clone()),
            EFrame::TyArg(t) => Expr::ty_app(e, t.clone()),
            EFrame::Case(alts) => Expr::case(e, alts.clone()),
        }
    }
}

/// `(λx:σ.e) v = let x:σ = v in e` (β).
pub fn beta(e: &Expr) -> Option<Expr> {
    match e {
        Expr::App(f, arg) => match &**f {
            Expr::Lam(b, body) => Some(Expr::let1(b.clone(), (**arg).clone(), (**body).clone())),
            _ => None,
        },
        _ => None,
    }
}

/// `(Λa.e) φ = e{φ/a}` (β_τ).
pub fn beta_ty(e: &Expr, supply: &mut NameSupply) -> Option<Expr> {
    match e {
        Expr::TyApp(f, phi) => match &**f {
            Expr::TyLam(a, body) => {
                Some(subst_tys_in_expr(body, [(a.clone(), phi.clone())], supply))
            }
            _ => None,
        },
        _ => None,
    }
}

/// `case K φ⃗ v⃗ of … K x⃗ → e … = let x⃗ = v⃗ in e` (case).
///
/// Falls back to the default alternative when no constructor alternative
/// matches.
pub fn case_con(e: &Expr) -> Option<Expr> {
    let Expr::Case(scrut, alts) = e else {
        return None;
    };
    let (con, args): (&fj_ast::Ident, &[Expr]) = match &**scrut {
        Expr::Con(c, _, args) => (c, args),
        _ => return None,
    };
    let alt = alts
        .iter()
        .find(|a| matches!(&a.con, fj_ast::AltCon::Con(c2) if c2 == con))
        .or_else(|| alts.iter().find(|a| a.con == fj_ast::AltCon::Default))?;
    let mut rhs = alt.rhs.clone();
    for (b, v) in alt.binders.iter().zip(args).rev() {
        rhs = Expr::let1(b.clone(), v.clone(), rhs);
    }
    Some(rhs)
}

/// `let x = v in C[x] = let x = v in C[v]` (inline), applied exhaustively
/// to all occurrences. Only values and atoms are substitutable (the
/// paper's "notion of what is substitutable" for call-by-name).
pub fn inline(e: &Expr, supply: &mut NameSupply) -> Option<Expr> {
    let Expr::Let(LetBind::NonRec(b, rhs), body) = e else {
        return None;
    };
    if !(rhs.is_answer() || rhs.is_atom()) {
        return None;
    }
    let body2 = subst_terms(body, [(b.name.clone(), (**rhs).clone())], supply);
    Some(Expr::Let(
        LetBind::NonRec(b.clone(), rhs.clone()),
        Expr::share(body2),
    ))
}

/// `let vb in e = e` when nothing bound occurs free in `e` (drop).
pub fn drop_dead(e: &Expr) -> Option<Expr> {
    let Expr::Let(bind, body) = e else {
        return None;
    };
    let fv = free_vars(body);
    if bind.binders().iter().any(|b| fv.contains(&b.name)) {
        return None;
    }
    Some((**body).clone())
}

/// `join jb in e = e` when no bound label occurs free in `e` (jdrop).
pub fn jdrop(e: &Expr) -> Option<Expr> {
    let Expr::Join(jb, body) = e else { return None };
    let fl = free_labels(body);
    if jb.labels().iter().any(|l| fl.contains(*l)) {
        return None;
    }
    Some((**body).clone())
}

/// Inline a non-recursive join point at a *tail* jump:
/// `join j a⃗ x⃗ = u in L[…, jump j φ⃗ v⃗ τ, …]`
/// `= join j a⃗ x⃗ = u in L[…, let x⃗ = v⃗ in u{φ⃗/a⃗}, …]` (jinline).
///
/// This function rewrites **every** tail jump to `j` in the body; jumps in
/// non-tail positions (where the `jinline` axiom does not apply) are left
/// alone, so the rewrite is always sound.
pub fn jinline(e: &Expr, supply: &mut NameSupply) -> Option<Expr> {
    let Expr::Join(JoinBind::NonRec(def), body) = e else {
        return None;
    };
    let mut changed = false;
    let new_body = rewrite_tail_jumps(body, &def.name, supply, &mut changed, &|sup, tys, args| {
        let mut u = def.body.clone();
        u = subst_tys_in_expr(
            &u,
            def.ty_params.iter().cloned().zip(tys.iter().cloned()),
            sup,
        );
        let pairs: Vec<(Binder, Expr)> = def
            .params
            .iter()
            .cloned()
            .zip(args.iter().cloned())
            .collect();
        for (b, v) in pairs.into_iter().rev() {
            u = Expr::let1(b, v, u);
        }
        u
    });
    if changed {
        Some(Expr::Join(
            JoinBind::NonRec(def.clone()),
            Expr::share(new_body),
        ))
    } else {
        None
    }
}

type JumpRewrite<'a> = &'a dyn Fn(&mut NameSupply, &[Type], &[Expr]) -> Expr;

/// Walk the *tail contexts* of `e` (Fig. 1's `L`), rewriting tail jumps to
/// `target`.
fn rewrite_tail_jumps(
    e: &Expr,
    target: &Name,
    supply: &mut NameSupply,
    changed: &mut bool,
    mk: JumpRewrite<'_>,
) -> Expr {
    match e {
        Expr::Jump(j, tys, args, _) if j == target => {
            *changed = true;
            // Freshen the inlined copy to preserve unique binders.
            fj_ast::freshen(&mk(supply, tys, args), supply)
        }
        Expr::Case(s, alts) => Expr::case(
            (**s).clone(),
            alts.iter()
                .map(|a| Alt {
                    con: a.con.clone(),
                    binders: a.binders.clone(),
                    rhs: rewrite_tail_jumps(&a.rhs, target, supply, changed, mk),
                })
                .collect(),
        ),
        Expr::Let(bind, body) => Expr::Let(
            bind.clone(),
            Expr::share(rewrite_tail_jumps(body, target, supply, changed, mk)),
        ),
        Expr::Join(jb, body) => {
            // Join RHSs and the body are both tail contexts (Fig. 1).
            // Shadowing cannot occur: binders are globally unique.
            let mut jb2 = jb.clone();
            for d in jb2.defs_mut() {
                d.body = rewrite_tail_jumps(&d.body, target, supply, changed, mk);
            }
            Expr::Join(
                jb2,
                Expr::share(rewrite_tail_jumps(body, target, supply, changed, mk)),
            )
        }
        other => other.clone(),
    }
}

/// `E[let vb in e] = let vb in E[e]` (float), one frame at a time.
pub fn float(frame: &EFrame, e: &Expr) -> Option<Expr> {
    let Expr::Let(bind, body) = e else {
        return None;
    };
    Some(Expr::Let(
        bind.clone(),
        Expr::share(frame.plug((**body).clone())),
    ))
}

/// `E[case e of K x⃗ → u⃗] = case e of K x⃗ → E[u⃗]` (casefloat).
pub fn casefloat(frame: &EFrame, e: &Expr) -> Option<Expr> {
    let Expr::Case(s, alts) = e else { return None };
    Some(Expr::case(
        (**s).clone(),
        alts.iter()
            .map(|a| Alt {
                con: a.con.clone(),
                binders: a.binders.clone(),
                rhs: frame.plug(a.rhs.clone()),
            })
            .collect(),
    ))
}

/// `E[join jb in e] = join E[jb] in E[e]` (jfloat) — the novel axiom.
///
/// `E[jb]` pushes the context into every right-hand side:
/// `E[j a⃗ x⃗ = u] ≜ j a⃗ x⃗ = E[u]`.
pub fn jfloat(frame: &EFrame, e: &Expr) -> Option<Expr> {
    let Expr::Join(jb, body) = e else { return None };
    let mut jb2 = jb.clone();
    for d in jb2.defs_mut() {
        d.body = frame.plug(d.body.clone());
    }
    Some(Expr::Join(jb2, Expr::share(frame.plug((**body).clone()))))
}

/// `E[jump j φ⃗ e⃗ τ] : τ' = jump j φ⃗ e⃗ τ'` (abort): a jump discards its
/// context; only the result-type annotation needs retargeting.
pub fn abort(frame: &EFrame, e: &Expr, new_ty: Type) -> Option<Expr> {
    let _ = frame;
    let Expr::Jump(j, tys, args, _) = e else {
        return None;
    };
    Some(Expr::Jump(j.clone(), tys.clone(), args.clone(), new_ty))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{alpha_eq, Dsl, JoinDef, PrimOp};
    use fj_eval::{run_int, EvalMode};

    const FUEL: u64 = 100_000;

    /// Observational soundness on closed Int programs: both sides of a
    /// rewrite evaluate to the same integer (Prop. 3, test-sized).
    fn assert_obs_eq(before: &Expr, after: &Expr) {
        for mode in [
            EvalMode::CallByName,
            EvalMode::CallByNeed,
            EvalMode::CallByValue,
        ] {
            let a = run_int(before, mode, FUEL).unwrap();
            let b = run_int(after, mode, FUEL).unwrap();
            assert_eq!(a, b, "{mode:?}:\nbefore:\n{before}\nafter:\n{after}");
        }
    }

    #[test]
    fn beta_makes_let() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let e = Expr::app(
            Expr::lam(
                x.clone(),
                Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
            ),
            Expr::Lit(41),
        );
        let r = beta(&e).expect("β applies");
        assert!(matches!(r, Expr::Let(..)));
        assert_obs_eq(&e, &r);
    }

    #[test]
    fn beta_ty_substitutes() {
        let mut d = Dsl::new();
        let a = d.name("a");
        let x = Binder::new(d.name("x"), Type::Var(a.clone()));
        let e = Expr::ty_app(
            Expr::ty_lam(a, Expr::lam(x.clone(), Expr::var(&x.name))),
            Type::Int,
        );
        let r = beta_ty(&e, &mut d.supply).expect("β_τ applies");
        match &r {
            Expr::Lam(b, _) => assert_eq!(b.ty, Type::Int),
            other => panic!("expected lambda, got {other}"),
        }
    }

    #[test]
    fn case_con_selects_alt() {
        let mut d = Dsl::new();
        let scrut = d.just(Type::Int, Expr::Lit(5));
        let e = d.case_maybe(Type::Int, scrut, Expr::Lit(0), |_, x| {
            Expr::prim2(PrimOp::Add, Expr::var(x), Expr::Lit(1))
        });
        let r = case_con(&e).expect("case applies");
        assert_obs_eq(&e, &r);
        assert_eq!(run_int(&r, EvalMode::CallByName, FUEL).unwrap(), 6);
    }

    #[test]
    fn case_con_falls_to_default() {
        let d = Dsl::new();
        let e = Expr::case(
            d.nothing(Type::Int),
            vec![
                fj_ast::Alt::simple(fj_ast::AltCon::Con("Just".into()), Expr::Lit(1)),
                fj_ast::Alt::simple(fj_ast::AltCon::Default, Expr::Lit(7)),
            ],
        );
        let r = case_con(&e).expect("default applies");
        assert_eq!(run_int(&r, EvalMode::CallByName, FUEL).unwrap(), 7);
    }

    #[test]
    fn inline_substitutes_values() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let e = Expr::let1(
            x.clone(),
            Expr::Lit(5),
            Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&x.name)),
        );
        let r = inline(&e, &mut d.supply).expect("inline applies");
        assert_obs_eq(&e, &r);
        // After inlining, the binding is dead and droppable.
        let dropped = drop_dead(&r).expect("drop applies");
        assert_eq!(run_int(&dropped, EvalMode::CallByName, FUEL).unwrap(), 10);
    }

    #[test]
    fn drop_requires_dead() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let live = Expr::let1(x.clone(), Expr::Lit(5), Expr::var(&x.name));
        assert!(drop_dead(&live).is_none());
    }

    #[test]
    fn jdrop_requires_dead_label() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let dead = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::Lit(1),
            },
            Expr::Lit(42),
        );
        assert_eq!(jdrop(&dead), Some(Expr::Lit(42)));
        let live = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![],
                body: Expr::Lit(1),
            },
            Expr::jump(&j, vec![], vec![], Type::Int),
        );
        assert!(jdrop(&live).is_none());
    }

    #[test]
    fn jinline_rewrites_tail_jumps_only() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        // join j x = x + 1 in if True then jump j 1 else jump j 2
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x.clone()],
                body: Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(1)),
            },
            Expr::ite(
                Expr::bool(true),
                Expr::jump(&j, vec![], vec![Expr::Lit(1)], Type::Int),
                Expr::jump(&j, vec![], vec![Expr::Lit(2)], Type::Int),
            ),
        );
        let r = jinline(&e, &mut d.supply).expect("jinline applies");
        assert_obs_eq(&e, &r);
        // All jumps gone: the join is now dead.
        let dropped = jdrop(&r).expect("dead after exhaustive jinline");
        assert_eq!(run_int(&dropped, EvalMode::CallByName, FUEL).unwrap(), 2);
    }

    #[test]
    fn jinline_leaves_non_tail_jump() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        // join j x = x in (jump j 2 (Int -> Int)) 3 — the paper's example
        // where naive inlining would be ill-typed.
        let e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x.clone()],
                body: Expr::var(&x.name),
            },
            Expr::app(
                Expr::jump(
                    &j,
                    vec![],
                    vec![Expr::Lit(2)],
                    Type::fun(Type::Int, Type::Int),
                ),
                Expr::Lit(3),
            ),
        );
        assert!(
            jinline(&e, &mut d.supply).is_none(),
            "non-tail jump must not inline"
        );
    }

    #[test]
    fn float_and_casefloat_sound() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        // E = case □ of {1 -> 10; _ -> 20},  e = let x = 1 in x
        let frame = EFrame::Case(vec![
            fj_ast::Alt::simple(fj_ast::AltCon::Lit(1), Expr::Lit(10)),
            fj_ast::Alt::simple(fj_ast::AltCon::Default, Expr::Lit(20)),
        ]);
        let let_e = Expr::let1(x.clone(), Expr::Lit(1), Expr::var(&x.name));
        let before = frame.plug(let_e.clone());
        let after = float(&frame, &let_e).expect("float applies");
        assert_obs_eq(&before, &after);

        let case_e = Expr::ite(Expr::bool(true), Expr::Lit(1), Expr::Lit(2));
        let before2 = frame.plug(case_e.clone());
        let after2 = casefloat(&frame, &case_e).expect("casefloat applies");
        assert_obs_eq(&before2, &after2);
    }

    #[test]
    fn jfloat_moves_context_into_join() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let x = d.binder("x", Type::Int);
        // join j x = x * 2 in if True then jump j 3 else 5, wrapped in
        // E = □ + nothing…  use E = case □ of {6 -> 60; _ -> 0}.
        let join_e = Expr::join1(
            JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![x.clone()],
                body: Expr::prim2(PrimOp::Mul, Expr::var(&x.name), Expr::Lit(2)),
            },
            Expr::ite(
                Expr::bool(true),
                Expr::jump(&j, vec![], vec![Expr::Lit(3)], Type::Int),
                Expr::Lit(5),
            ),
        );
        let frame = EFrame::Case(vec![
            fj_ast::Alt::simple(fj_ast::AltCon::Lit(6), Expr::Lit(60)),
            fj_ast::Alt::simple(fj_ast::AltCon::Default, Expr::Lit(0)),
        ]);
        let before = frame.plug(join_e.clone());
        let after = jfloat(&frame, &join_e).expect("jfloat applies");
        assert_obs_eq(&before, &after);
        // After jfloat the case went into the RHS and body; the jump branch
        // still jumps, so applying `abort` inside the body branch keeps it
        // well-formed (exercised via the machine above).
        match &after {
            Expr::Join(jb, _) => {
                assert!(matches!(&jb.defs()[0].body, Expr::Case(..)));
            }
            other => panic!("expected join, got {other}"),
        }
        assert_eq!(run_int(&before, EvalMode::CallByName, FUEL).unwrap(), 60);
    }

    #[test]
    fn abort_retargets_annotation() {
        let mut d = Dsl::new();
        let j = d.name("j");
        let e = Expr::jump(
            &j,
            vec![],
            vec![Expr::Lit(1)],
            Type::fun(Type::Int, Type::Int),
        );
        let frame = EFrame::AppArg(Expr::Lit(3));
        let r = abort(&frame, &e, Type::Int).expect("abort applies");
        match r {
            Expr::Jump(_, _, _, t) => assert_eq!(t, Type::Int),
            other => panic!("expected jump, got {other}"),
        }
    }

    #[test]
    fn alpha_eq_smoke_for_rewrites() {
        // Sanity: rewrites that should be identity-like compose with α-eq.
        let e = Expr::Lit(1);
        assert!(alpha_eq(&e, &e));
    }
}
