//! The Float Out pass: move `let` bindings outward (let-floating).
//!
//! A simplified rendition of GHC's full-laziness transform [Peyton Jones,
//! Partain & Santos 1996]: a `let` binding whose right-hand side does not
//! mention the enclosing lambda's binder is hoisted above the lambda, so
//! it is allocated once instead of once per call.
//!
//! Per the paper's Sec. 7 notes, **`join` bindings are left alone**:
//! "Moving a join binding outwards … risks destroying the join point, so
//! we modified Float Out to leave join bindings alone in most cases."
//! This pass therefore only ever moves `let`s, and never moves one out of
//! a join body (which could turn a tail call shape into a captured one).

use fj_ast::{occurs_free, Alt, Binder, Expr, LetBind};

/// Apply Float Out over a whole term.
pub fn float_out(e: &Expr) -> Expr {
    float_out_counting(e).0
}

/// As [`float_out`], also counting the `let` bindings hoisted past a
/// lambda (for pass-level reporting).
pub fn float_out_counting(e: &Expr) -> (Expr, u64) {
    let mut hoisted = 0u64;
    let out = go(e, &mut hoisted);
    (out, hoisted)
}

fn go(e: &Expr, hoisted: &mut u64) -> Expr {
    match e {
        Expr::Var(_) | Expr::Lit(_) => e.clone(),
        Expr::Prim(op, args) => Expr::Prim(*op, args.iter().map(|a| go(a, hoisted)).collect()),
        Expr::Con(c, tys, args) => Expr::Con(
            c.clone(),
            tys.clone(),
            args.iter().map(|a| go(a, hoisted)).collect(),
        ),
        Expr::Lam(b, body) => {
            let body2 = go(body, hoisted);
            let (floated, rest) = split_floatable(body2, b);
            *hoisted += floated.len() as u64;
            let mut result = Expr::lam(b.clone(), rest);
            for (fb, rhs) in floated.into_iter().rev() {
                result = Expr::let1(fb, rhs, result);
            }
            result
        }
        Expr::TyLam(a, body) => Expr::ty_lam(a.clone(), go(body, hoisted)),
        Expr::App(f, a) => Expr::app(go(f, hoisted), go(a, hoisted)),
        Expr::TyApp(f, t) => Expr::ty_app(go(f, hoisted), t.clone()),
        Expr::Case(s, alts) => Expr::case(
            go(s, hoisted),
            alts.iter()
                .map(|a| Alt {
                    con: a.con.clone(),
                    binders: a.binders.clone(),
                    rhs: go(&a.rhs, hoisted),
                })
                .collect(),
        ),
        Expr::Let(bind, body) => {
            let bind2 = match bind {
                LetBind::NonRec(b, rhs) => {
                    LetBind::NonRec(b.clone(), Expr::share(go(rhs, hoisted)))
                }
                LetBind::Rec(binds) => LetBind::Rec(
                    binds
                        .iter()
                        .map(|(b, rhs)| (b.clone(), go(rhs, hoisted)))
                        .collect(),
                ),
            };
            Expr::Let(bind2, Expr::share(go(body, hoisted)))
        }
        Expr::Join(jb, body) => {
            // Join bindings are never moved; recurse inside only.
            let mut jb2 = jb.clone();
            for d in jb2.defs_mut() {
                d.body = go(&d.body, hoisted);
            }
            Expr::Join(jb2, Expr::share(go(body, hoisted)))
        }
        Expr::Jump(j, tys, args, res) => Expr::Jump(
            j.clone(),
            tys.clone(),
            args.iter().map(|a| go(a, hoisted)).collect(),
            res.clone(),
        ),
    }
}

/// Peel leading non-recursive `let`s off a lambda body when their RHS
/// doesn't use the lambda binder; return (hoisted bindings, rest).
fn split_floatable(body: Expr, lam_binder: &Binder) -> (Vec<(Binder, Expr)>, Expr) {
    let mut floated = Vec::new();
    let mut cur = body;
    loop {
        match cur {
            Expr::Let(LetBind::NonRec(b, rhs), inner) if !occurs_free(&lam_binder.name, &rhs) => {
                floated.push((b, Expr::unshare(rhs)));
                cur = Expr::unshare(inner);
            }
            other => return (floated, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{Dsl, PrimOp, Type};
    use fj_eval::{run, run_int, EvalMode};

    #[test]
    fn hoists_invariant_binding_out_of_lambda() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let k = d.binder("k", Type::Int);
        // \x. let k = 1 + 2 in x + k   ⇒   let k = 1 + 2 in \x. x + k
        let e = Expr::lam(
            x.clone(),
            Expr::let1(
                k.clone(),
                Expr::prim2(PrimOp::Add, Expr::Lit(1), Expr::Lit(2)),
                Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::var(&k.name)),
            ),
        );
        let r = float_out(&e);
        assert!(matches!(r, Expr::Let(..)), "binding must hoist:\n{r}");
        let apply = Expr::app(r, Expr::Lit(10));
        assert_eq!(run_int(&apply, EvalMode::CallByName, 10_000).unwrap(), 13);
    }

    #[test]
    fn keeps_dependent_binding_inside() {
        let mut d = Dsl::new();
        let x = d.binder("x", Type::Int);
        let k = d.binder("k", Type::Int);
        let e = Expr::lam(
            x.clone(),
            Expr::let1(
                k.clone(),
                Expr::prim2(PrimOp::Add, Expr::var(&x.name), Expr::Lit(2)),
                Expr::var(&k.name),
            ),
        );
        let r = float_out(&e);
        assert!(
            matches!(r, Expr::Lam(..)),
            "dependent binding must stay:\n{r}"
        );
    }

    #[test]
    fn join_bindings_never_move() {
        let mut d = Dsl::new();
        let env = d.data_env.clone();
        let e = d.joinrec_loop(
            "go",
            vec![("n", Type::Int)],
            |_, go, ps| {
                Expr::ite(
                    Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                    Expr::Lit(0),
                    Expr::jump(
                        go,
                        vec![],
                        vec![Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1))],
                        Type::Int,
                    ),
                )
            },
            |_, go| Expr::jump(go, vec![], vec![Expr::Lit(5)], Type::Int),
        );
        let r = float_out(&e);
        assert!(matches!(r, Expr::Join(..)));
        assert!(fj_check::lint(&r, &env).is_ok());
        assert_eq!(
            run(&r, EvalMode::CallByValue, 10_000)
                .unwrap()
                .metrics
                .total_allocs(),
            0
        );
    }

    #[test]
    fn hoist_reduces_per_call_allocation() {
        let mut d = Dsl::new();
        let f = d.binder("f", Type::fun(Type::Int, Type::Int));
        let x = d.binder("x", Type::Int);
        let k = d.binder("k", Type::fun(Type::Int, Type::Int));
        let y = d.binder("y", Type::Int);
        // let f = \x. let k = \y. y + 1 in k x in f 1 + f 2
        let e = Expr::let1(
            f.clone(),
            Expr::lam(
                x.clone(),
                Expr::let1(
                    k.clone(),
                    Expr::lam(
                        y.clone(),
                        Expr::prim2(PrimOp::Add, Expr::var(&y.name), Expr::Lit(1)),
                    ),
                    Expr::app(Expr::var(&k.name), Expr::var(&x.name)),
                ),
            ),
            Expr::prim2(
                PrimOp::Add,
                Expr::app(Expr::var(&f.name), Expr::Lit(1)),
                Expr::app(Expr::var(&f.name), Expr::Lit(2)),
            ),
        );
        let r = float_out(&e);
        let before = run(&e, EvalMode::CallByValue, 100_000).unwrap();
        let after = run(&r, EvalMode::CallByValue, 100_000).unwrap();
        assert_eq!(before.value, after.value);
        assert!(
            after.metrics.total_allocs() < before.metrics.total_allocs(),
            "hoisting should save the per-call closure: {} vs {}",
            after.metrics,
            before.metrics
        );
    }
}
