//! Corpus pinning: every shrunk repro under `fuzz/corpus/` replays
//! through the full route matrix as an ordinary test, so a failure the
//! farm once caught (and that was then fixed) can never quietly return.
//!
//! Each corpus file is comment-headed (see `farm::write_repro`): the
//! `-- case-seed:` line carries the standalone replay seed and the
//! `-- gen:` line is the authoritative program description, replayable
//! through `codec::parse`. Everything else is for human eyes.

use fj_testkit::{check_routes, codec, FarmConfig};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    // crates/testkit -> workspace root -> fuzz/corpus
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// Pull `(case seed, gen line)` out of one repro file's comment header.
fn parse_header(text: &str) -> Result<(u64, String), String> {
    let mut seed = None;
    let mut gen = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("-- case-seed: ") {
            let hex = rest
                .split_whitespace()
                .next()
                .and_then(|w| w.strip_prefix("0x"))
                .ok_or("malformed -- case-seed: line")?;
            seed = Some(u64::from_str_radix(hex, 16).map_err(|e| e.to_string())?);
        }
        if let Some(rest) = line.strip_prefix("-- gen: ") {
            gen = Some(rest.to_string());
        }
    }
    match (seed, gen) {
        (Some(s), Some(g)) => Ok((s, g)),
        (None, _) => Err("no -- case-seed: line".to_string()),
        (_, None) => Err("no -- gen: line".to_string()),
    }
}

#[test]
fn every_corpus_repro_passes_the_route_matrix() {
    let dir = corpus_dir();
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("corpus dir {} unreadable: {e}", dir.display()))
        .filter_map(|entry| {
            let path = entry.expect("read corpus entry").path();
            (path.extension().is_some_and(|ext| ext == "fj")).then_some(path)
        })
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "the corpus at {} is empty — it should hold at least the seed repros",
        dir.display()
    );

    let cfg = FarmConfig {
        corpus_dir: None,
        ..FarmConfig::default()
    };
    for path in entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        let (seed, gen_line) =
            parse_header(&text).unwrap_or_else(|e| panic!("{name}: bad header: {e}"));
        let g = codec::parse(&gen_line)
            .unwrap_or_else(|e| panic!("{name}: -- gen: line does not parse: {e}"));
        if let Err((routes, message)) = check_routes(&cfg, &g, seed) {
            panic!(
                "{name}: pinned repro regressed — {} vs {} disagree again: {message}",
                routes.0, routes.1
            );
        }
    }
}
