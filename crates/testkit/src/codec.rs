//! A textual codec for generator descriptions ([`G`]).
//!
//! Fuzz-farm repro files pin a failure by its *description*, not its
//! lowered term: the description is tiny, diff-friendly, and replays
//! through [`crate::gen::build_closed`] into exactly the program that
//! failed (fresh names aside — every oracle in the farm is
//! α-invariant). The format is a minimal S-expression:
//!
//! ```text
//! (join (lit 3) (var 0) (jump 1 (lit 7)))
//! ```
//!
//! [`to_text`] and [`parse`] round-trip every `G`; a property test pins
//! that for the whole grammar.

use crate::gen::G;

/// Render a description as a single-line S-expression.
pub fn to_text(g: &G) -> String {
    let mut out = String::new();
    write_g(g, &mut out);
    out
}

fn write_g(g: &G, out: &mut String) {
    use std::fmt::Write;
    match g {
        G::Lit(n) => write!(out, "(lit {n})").unwrap(),
        G::Var(i) => write!(out, "(var {i})").unwrap(),
        G::Add(a, b) => write2("add", a, b, out),
        G::Sub(a, b) => write2("sub", a, b, out),
        G::Mul(a, b) => write2("mul", a, b, out),
        G::IfLt(a, b, t, f) => {
            out.push_str("(iflt");
            for c in [a, b, t, f] {
                out.push(' ');
                write_g(c, out);
            }
            out.push(')');
        }
        G::Let(rhs, body) => write2("let", rhs, body, out),
        G::CaseMaybe {
            just,
            payload,
            none,
            some,
        } => {
            out.push_str(if *just { "(case just" } else { "(case nothing" });
            for c in [payload, none, some] {
                out.push(' ');
                write_g(c, out);
            }
            out.push(')');
        }
        G::Loop { iters, init, step } => {
            write!(out, "(loop {iters}").unwrap();
            for c in [init, step] {
                out.push(' ');
                write_g(c, out);
            }
            out.push(')');
        }
        G::Join { body, arg, cont } => {
            out.push_str("(join");
            for c in [body, arg, cont] {
                out.push(' ');
                write_g(c, out);
            }
            out.push(')');
        }
        G::JoinLoop {
            mutual,
            iters,
            init,
            step,
            done,
        } => {
            write!(
                out,
                "(joinloop {} {iters}",
                if *mutual { "mutual" } else { "rec" }
            )
            .unwrap();
            for c in [init, step, done] {
                out.push(' ');
                write_g(c, out);
            }
            out.push(')');
        }
        G::Jump(i, payload) => {
            write!(out, "(jump {i} ").unwrap();
            write_g(payload, out);
            out.push(')');
        }
    }
}

fn write2(head: &str, a: &G, b: &G, out: &mut String) {
    out.push('(');
    out.push_str(head);
    out.push(' ');
    write_g(a, out);
    out.push(' ');
    write_g(b, out);
    out.push(')');
}

/// Parse a description previously rendered by [`to_text`].
///
/// # Errors
///
/// A human-readable message naming the offending token on malformed
/// input.
pub fn parse(src: &str) -> Result<G, String> {
    let mut toks = tokenize(src);
    let g = parse_g(&mut toks)?;
    match toks.next() {
        None => Ok(g),
        Some(t) => Err(format!("trailing input after description: `{t}`")),
    }
}

fn tokenize(src: &str) -> std::vec::IntoIter<String> {
    let mut toks = Vec::new();
    let mut cur = String::new();
    for ch in src.chars() {
        match ch {
            '(' | ')' => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
                toks.push(ch.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    toks.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        toks.push(cur);
    }
    toks.into_iter()
}

fn parse_g(toks: &mut std::vec::IntoIter<String>) -> Result<G, String> {
    expect(toks, "(")?;
    let head = next(toks)?;
    let g = match head.as_str() {
        "lit" => G::Lit(scalar(toks, "literal")?),
        "var" => G::Var(scalar(toks, "variable index")?),
        "add" => G::Add(sub(toks)?, sub(toks)?),
        "sub" => G::Sub(sub(toks)?, sub(toks)?),
        "mul" => G::Mul(sub(toks)?, sub(toks)?),
        "iflt" => G::IfLt(sub(toks)?, sub(toks)?, sub(toks)?, sub(toks)?),
        "let" => G::Let(sub(toks)?, sub(toks)?),
        "case" => {
            let just = match next(toks)?.as_str() {
                "just" => true,
                "nothing" => false,
                other => return Err(format!("expected just|nothing, got `{other}`")),
            };
            G::CaseMaybe {
                just,
                payload: sub(toks)?,
                none: sub(toks)?,
                some: sub(toks)?,
            }
        }
        "loop" => G::Loop {
            iters: scalar(toks, "iteration count")?,
            init: sub(toks)?,
            step: sub(toks)?,
        },
        "join" => G::Join {
            body: sub(toks)?,
            arg: sub(toks)?,
            cont: sub(toks)?,
        },
        "joinloop" => {
            let mutual = match next(toks)?.as_str() {
                "mutual" => true,
                "rec" => false,
                other => return Err(format!("expected rec|mutual, got `{other}`")),
            };
            G::JoinLoop {
                mutual,
                iters: scalar(toks, "iteration count")?,
                init: sub(toks)?,
                step: sub(toks)?,
                done: sub(toks)?,
            }
        }
        "jump" => G::Jump(scalar(toks, "label index")?, sub(toks)?),
        other => return Err(format!("unknown description head `{other}`")),
    };
    expect(toks, ")")?;
    Ok(g)
}

fn sub(toks: &mut std::vec::IntoIter<String>) -> Result<Box<G>, String> {
    parse_g(toks).map(Box::new)
}

fn next(toks: &mut std::vec::IntoIter<String>) -> Result<String, String> {
    toks.next().ok_or_else(|| "unexpected end of input".into())
}

fn expect(toks: &mut std::vec::IntoIter<String>, want: &str) -> Result<(), String> {
    let got = next(toks)?;
    if got == want {
        Ok(())
    } else {
        Err(format!("expected `{want}`, got `{got}`"))
    }
}

fn scalar<N: std::str::FromStr>(
    toks: &mut std::vec::IntoIter<String>,
    what: &str,
) -> Result<N, String> {
    let t = next(toks)?;
    t.parse().map_err(|_| format!("bad {what}: `{t}`"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen, DEFAULT_DEPTH};
    use crate::rng::SplitMix64;

    #[test]
    fn codec_round_trips_generated_descriptions() {
        let mut rng = SplitMix64::new(0xC0DE_C0DE);
        for _ in 0..200 {
            let g = gen(&mut rng, DEFAULT_DEPTH);
            let text = to_text(&g);
            let back = parse(&text).unwrap_or_else(|e| panic!("parse failed on `{text}`: {e}"));
            assert_eq!(back, g, "round trip changed the description: {text}");
        }
    }

    #[test]
    fn codec_round_trips_join_nodes() {
        let g = G::JoinLoop {
            mutual: true,
            iters: 7,
            init: Box::new(G::Lit(-3)),
            step: Box::new(G::Jump(2, Box::new(G::Var(1)))),
            done: Box::new(G::Join {
                body: Box::new(G::Lit(0)),
                arg: Box::new(G::Var(0)),
                cont: Box::new(G::Jump(0, Box::new(G::Lit(9)))),
            }),
        };
        assert_eq!(parse(&to_text(&g)).unwrap(), g);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "(lit)",
            "(frob 1)",
            "(lit 1) extra",
            "(case maybe (lit 0) (lit 0) (lit 0))",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input `{bad}`");
        }
    }
}
