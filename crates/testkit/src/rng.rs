//! A deterministic [`SplitMix64`] pseudo-random generator.
//!
//! SplitMix64 [Steele, Lea & Flood 2014] is the usual seeding PRNG of the
//! xoshiro family: a 64-bit Weyl sequence pushed through a finalizer. It
//! is tiny, has no state beyond one `u64`, and — crucially for a test
//! suite that must run with **no network access** — needs no external
//! crate. Every generated counterexample is reproducible from `(seed,
//! case index)` alone.

/// SplitMix64 generator state.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `0..n` (`n > 0`). The modulo bias is
    /// irrelevant at test-generator scales.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A random `i8` (the generator's literal range).
    pub fn i8(&mut self) -> i8 {
        self.next_u64() as i8
    }

    /// A random `u8` (the generator's variable-index range).
    pub fn u8(&mut self) -> u8 {
        self.next_u64() as u8
    }

    /// Derive an independent generator, e.g. one per test case.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_matches_reference() {
        // Reference values for seed 1234567 from the published algorithm.
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(a, r2.next_u64());
        assert_eq!(b, r2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn split_streams_diverge() {
        let mut r = SplitMix64::new(9);
        let mut a = r.split();
        let mut b = r.split();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
