//! The property-test driver: generate, check, shrink, report.
//!
//! [`check`] runs a property over `cases` freshly generated programs.
//! On the first failure it shrinks the description (see
//! [`crate::shrink`]) and panics with the minimal failing program — both
//! the grammar-level description (replayable by pasting into a unit
//! test) and the pretty-printed F_J term.

use crate::gen::{build_closed, gen, DEFAULT_DEPTH, G};
use crate::rng::SplitMix64;
use crate::shrink::{shrink, DEFAULT_SHRINK_BUDGET};

/// Generation/driver settings.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated programs per property.
    pub cases: u32,
    /// Root seed; every case derives its own generator from it.
    pub seed: u64,
    /// Maximum nesting depth of generated programs.
    pub max_depth: u32,
    /// Property-evaluation budget for shrinking a failure.
    pub shrink_budget: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 128,
            seed: 0xF00D_5EED_CAFE_0001,
            max_depth: DEFAULT_DEPTH,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
        }
    }
}

/// Run `prop` over [`Config::default`]`.cases` generated programs.
/// `prop` returns `Ok(())` to pass or `Err(message)` to fail; failures
/// are shrunk and reported via `panic!` so `cargo test` surfaces them.
pub fn check<F>(name: &str, prop: F)
where
    F: FnMut(&G) -> Result<(), String>,
{
    check_with(Config::default(), name, prop);
}

/// As [`check`] with explicit settings.
pub fn check_with<F>(cfg: Config, name: &str, mut prop: F)
where
    F: FnMut(&G) -> Result<(), String>,
{
    let mut root = SplitMix64::new(cfg.seed);
    for case in 0..cfg.cases {
        let mut rng = root.split();
        let g = gen(&mut rng, cfg.max_depth);
        if let Err(first_msg) = prop(&g) {
            let mut fails = |cand: &G| prop(cand).err();
            let (min, msg) = shrink(&g, &mut fails, cfg.shrink_budget);
            let (_, term) = build_closed(&min);
            panic!(
                "property `{name}` failed at case {case}/{cases} (seed {seed:#x})\n\
                 original failure: {first_msg}\n\
                 minimal failure:  {msg}\n\
                 minimal description (replayable):\n  {min:?}\n\
                 minimal program:\n{term}",
                cases = cfg.cases,
                seed = cfg.seed,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut n = 0u32;
        check_with(
            Config {
                cases: 16,
                ..Config::default()
            },
            "trivially-true",
            |_| {
                n += 1;
                Ok(())
            },
        );
        assert_eq!(n, 16);
    }

    #[test]
    #[should_panic(expected = "property `always-false` failed")]
    fn failing_property_panics_with_minimal_case() {
        check_with(
            Config {
                cases: 4,
                ..Config::default()
            },
            "always-false",
            |_| Err("nope".into()),
        );
    }
}
