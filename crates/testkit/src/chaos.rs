//! A seeded **client saboteur** for the compile service.
//!
//! The fuzz farm's [`saboteur`](crate::saboteur) attacks the optimizer
//! from *inside* the process; this module attacks `fj serve` from the
//! *wire*. Each [`Episode`] is one hostile client behaviour — a slow
//! writer dribbling bytes across frame boundaries, a torn frame cut off
//! mid-JSON, raw garbage, an oversized line, a mid-request disconnect,
//! or a connection flood — chosen deterministically from a
//! [`SplitMix64`] stream so every chaos-soak failure replays from its
//! seed alone.
//!
//! The module is std-only (TCP + threads); it has no dependency on the
//! server crate, so `fj-server` can use it as a dev-dependency without
//! a cycle. An episode never asserts anything about the server beyond
//! "my socket did not hang": correctness assertions live in the soak
//! test, which runs honest clients alongside the saboteur and audits
//! the server's counters afterwards.

use crate::rng::SplitMix64;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One hostile client behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Episode {
    /// Connect, then dribble a valid request one byte at a time with
    /// pauses — a slow-loris probe of the idle/read timeout.
    SlowLoris,
    /// Send the first half of a valid frame, then disconnect.
    TornFrame,
    /// Send random non-UTF-8 garbage followed by a newline.
    Garbage,
    /// Send a single line larger than any sane frame cap.
    Oversize,
    /// Send a complete valid request, then disconnect without reading
    /// the response.
    MidRequestDisconnect,
    /// Open many connections at once and hold them idle briefly.
    Flood,
    /// Send a chaos panic op (only honoured by servers built with
    /// `chaos: true`; otherwise an unknown-op error, equally fine).
    PanicOp,
}

const EPISODES: [Episode; 7] = [
    Episode::SlowLoris,
    Episode::TornFrame,
    Episode::Garbage,
    Episode::Oversize,
    Episode::MidRequestDisconnect,
    Episode::Flood,
    Episode::PanicOp,
];

impl Episode {
    /// Pick an episode from the RNG stream.
    pub fn pick(rng: &mut SplitMix64) -> Episode {
        EPISODES[rng.below(EPISODES.len() as u64) as usize]
    }

    /// Short stable name, for logs and failure messages.
    pub fn name(self) -> &'static str {
        match self {
            Episode::SlowLoris => "slow-loris",
            Episode::TornFrame => "torn-frame",
            Episode::Garbage => "garbage",
            Episode::Oversize => "oversize",
            Episode::MidRequestDisconnect => "mid-request-disconnect",
            Episode::Flood => "flood",
            Episode::PanicOp => "panic-op",
        }
    }
}

/// What one episode did, for the soak test's bookkeeping.
#[derive(Clone, Debug, Default)]
pub struct EpisodeReport {
    /// Episode kind that ran.
    pub name: &'static str,
    /// Complete request lines the episode sent (frames the server should
    /// count as `received`).
    pub requests_sent: u64,
    /// Connections the episode opened (even if refused/shed).
    pub conns_opened: u64,
}

/// Tuning for a chaos episode run; everything is bounded so a soak test
/// finishes in seconds.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Bytes of a slow-loris dribble (also its pause count).
    pub loris_bytes: usize,
    /// Pause between dribbled bytes.
    pub loris_pause: Duration,
    /// Size of an oversized line, bytes (pick > the server's max-line).
    pub oversize_len: usize,
    /// Connections a flood opens.
    pub flood_conns: usize,
    /// How long flood connections are held open.
    pub flood_hold: Duration,
    /// Socket read timeout guarding every episode against hangs.
    pub socket_timeout: Duration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            loris_bytes: 24,
            loris_pause: Duration::from_millis(2),
            oversize_len: 1 << 13,
            flood_conns: 12,
            flood_hold: Duration::from_millis(20),
            socket_timeout: Duration::from_secs(5),
        }
    }
}

fn connect(addr: SocketAddr, cfg: &ChaosConfig) -> std::io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(cfg.socket_timeout))?;
    stream.set_write_timeout(Some(cfg.socket_timeout))?;
    stream.set_nodelay(true)?;
    Ok(stream)
}

/// Run one episode against the server at `addr`. All socket errors are
/// swallowed: the server shedding, timing out, or slamming the door on
/// a hostile client is *desired* behaviour, not a test failure. The
/// report says how much well-formed load the episode contributed.
pub fn run_episode(
    episode: Episode,
    addr: SocketAddr,
    rng: &mut SplitMix64,
    cfg: &ChaosConfig,
) -> EpisodeReport {
    let mut report = EpisodeReport {
        name: episode.name(),
        ..EpisodeReport::default()
    };
    match episode {
        Episode::SlowLoris => {
            let Ok(mut stream) = connect(addr, cfg) else {
                return report;
            };
            report.conns_opened = 1;
            // Dribble a prefix of a valid request; never finish the line,
            // so the idle timeout (not the parser) must reap us.
            let req = br#"{"op": "compile", "program": "def main : Int = 1;"}"#;
            for &b in req.iter().take(cfg.loris_bytes) {
                if stream.write_all(&[b]).is_err() {
                    break;
                }
                std::thread::sleep(cfg.loris_pause);
            }
        }
        Episode::TornFrame => {
            let Ok(mut stream) = connect(addr, cfg) else {
                return report;
            };
            report.conns_opened = 1;
            let req = br#"{"op": "compile", "program": "def main ="#;
            let cut = 1 + rng.below(req.len() as u64 - 1) as usize;
            let _ = stream.write_all(&req[..cut]);
            // Drop the connection with the frame incomplete.
        }
        Episode::Garbage => {
            let Ok(mut stream) = connect(addr, cfg) else {
                return report;
            };
            report.conns_opened = 1;
            let len = 1 + rng.below(256) as usize;
            let mut junk: Vec<u8> = (0..len).map(|_| rng.u8()).collect();
            // Keep the frame a single line so it parses as one request.
            for b in &mut junk {
                if *b == b'\n' {
                    *b = 0xFF;
                }
            }
            junk.push(b'\n');
            if stream.write_all(&junk).is_ok() {
                report.requests_sent = 1;
                let mut resp = String::new();
                let _ = BufReader::new(&stream).read_line(&mut resp);
            }
        }
        Episode::Oversize => {
            let Ok(mut stream) = connect(addr, cfg) else {
                return report;
            };
            report.conns_opened = 1;
            // The server must reject this *while reading*, without
            // buffering the whole line; it never reaches the parser, so
            // it does not count as a received request.
            let line = vec![b'x'; cfg.oversize_len];
            if stream.write_all(&line).is_ok() {
                let _ = stream.write_all(b"\n");
                let mut resp = String::new();
                let _ = BufReader::new(&stream).read_line(&mut resp);
            }
        }
        Episode::MidRequestDisconnect => {
            let Ok(mut stream) = connect(addr, cfg) else {
                return report;
            };
            report.conns_opened = 1;
            let req = br#"{"op": "compile", "program": "def main : Int = 1;"}"#;
            if stream.write_all(req).is_ok() && stream.write_all(b"\n").is_ok() {
                report.requests_sent = 1;
            }
            drop(stream); // Walk away before the answer arrives.
        }
        Episode::Flood => {
            let mut held = Vec::with_capacity(cfg.flood_conns);
            for _ in 0..cfg.flood_conns {
                if let Ok(stream) = connect(addr, cfg) {
                    report.conns_opened += 1;
                    held.push(stream);
                }
            }
            std::thread::sleep(cfg.flood_hold);
            // Connections close when `held` drops.
        }
        Episode::PanicOp => {
            let Ok(mut stream) = connect(addr, cfg) else {
                return report;
            };
            report.conns_opened = 1;
            if stream.write_all(b"{\"op\": \"__chaos_panic\"}\n").is_ok() {
                report.requests_sent = 1;
                let mut resp = String::new();
                let _ = BufReader::new(&stream).read_line(&mut resp);
            }
        }
    }
    report
}

/// An honest client for the soak test: sends `count` compile requests
/// for `source` on one connection, reading each response, and returns
/// `(ok, overloaded, other)` tallies. Returns an error only if the
/// *socket* fails — protocol-level errors are tallied, not raised.
///
/// # Errors
///
/// Connection setup or I/O failure on the honest connection. The soak
/// test treats that as a real failure: the server must never break an
/// honest client, no matter what the saboteur is doing.
pub fn honest_client(
    addr: SocketAddr,
    source: &str,
    count: usize,
    cfg: &ChaosConfig,
) -> std::io::Result<(u64, u64, u64)> {
    let stream = connect(addr, cfg)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let escaped: String = source
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    let req = format!("{{\"op\": \"compile\", \"program\": \"{escaped}\"}}\n");
    let (mut ok, mut overloaded, mut other) = (0u64, 0u64, 0u64);
    for _ in 0..count {
        writer.write_all(req.as_bytes())?;
        writer.flush()?;
        let mut resp = String::new();
        let n = reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed an honest connection mid-conversation",
            ));
        }
        if resp.starts_with("{\"ok\": true") {
            ok += 1;
        } else if resp.contains("\"tag\": \"overloaded\"") {
            overloaded += 1;
        } else {
            other += 1;
        }
    }
    Ok((ok, overloaded, other))
}

/// Drain whatever remains and close. Used by tests that want an orderly
/// goodbye after an episode barrage.
pub fn drain_and_close(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut sink = [0u8; 512];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episode_pick_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..32 {
            assert_eq!(Episode::pick(&mut a), Episode::pick(&mut b));
        }
    }

    #[test]
    fn episode_pick_covers_all_kinds() {
        let mut rng = SplitMix64::new(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..256 {
            seen.insert(Episode::pick(&mut rng).name());
        }
        assert_eq!(seen.len(), EPISODES.len(), "all episodes reachable");
    }
}
