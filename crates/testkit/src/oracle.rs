//! The per-pass differential oracle.
//!
//! [`differential`] runs a whole [`OptConfig`] pipeline one pass at a
//! time, and after **every** pass checks the three invariants the
//! repository's metatheory claims (Prop. 3 / Sec. 7's Lint discipline):
//!
//! 1. the pass's output still lints (typing, join-point discipline);
//! 2. the observable value is unchanged (evaluated on the paper's
//!    abstract machine);
//! 3. the allocation metrics are recorded before/after, so callers can
//!    assert or report per-pass allocation deltas.
//!
//! On a violation it reports *which pass* broke *which invariant*, with
//! pretty-printed before/after terms — the forensic payload that a
//! whole-pipeline check cannot give.

use fj_ast::{DataEnv, Expr, NameSupply};
use fj_check::lint;
use fj_core::{apply_pass, OptConfig, RewriteStats};
use fj_eval::{run, EvalMode, Metrics, Value};
use std::fmt;

/// What one pass did to the program, observationally.
#[derive(Clone, Debug)]
pub struct PassDiff {
    /// Pass name.
    pub pass: &'static str,
    /// Rewrites fired by the pass.
    pub rewrites: RewriteStats,
    /// Machine metrics of the pass's input.
    pub before: Metrics,
    /// Machine metrics of the pass's output.
    pub after: Metrics,
}

impl PassDiff {
    /// Change in total allocations across this pass (negative = saved).
    pub fn alloc_delta(&self) -> i64 {
        self.after.total_allocs() as i64 - self.before.total_allocs() as i64
    }
}

/// A full pipeline run that preserved the observable value at every step.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// The shared observable value.
    pub value: Value,
    /// Per-pass observations, in execution order.
    pub passes: Vec<PassDiff>,
    /// The fully optimized term.
    pub optimized: Expr,
}

impl DiffReport {
    /// Metrics of the unoptimized program.
    pub fn initial_metrics(&self) -> Metrics {
        self.passes.first().map(|p| p.before).unwrap_or_default()
    }

    /// Metrics of the fully optimized program.
    pub fn final_metrics(&self) -> Metrics {
        self.passes.last().map(|p| p.after).unwrap_or_default()
    }

    /// End-to-end change in total allocations (negative = saved).
    pub fn alloc_delta(&self) -> i64 {
        self.final_metrics().total_allocs() as i64 - self.initial_metrics().total_allocs() as i64
    }

    /// Sum of every pass's rewrite counters.
    pub fn total_rewrites(&self) -> RewriteStats {
        let mut t = RewriteStats::default();
        for p in &self.passes {
            t.merge(&p.rewrites);
        }
        t
    }
}

/// Which invariant a pass broke, and where.
#[derive(Debug)]
pub enum OracleError {
    /// The pass itself failed.
    Pass {
        /// Offending pass.
        pass: &'static str,
        /// The optimizer's error.
        error: fj_core::OptError,
    },
    /// The pass produced ill-typed output.
    Lint {
        /// Offending pass.
        pass: &'static str,
        /// What Lint found.
        error: fj_check::LintError,
        /// Pretty-printed output of the pass.
        dump: String,
    },
    /// Evaluation failed (on the input, or after the named pass).
    Eval {
        /// `"input"` or a pass name.
        stage: &'static str,
        /// The machine's error.
        error: fj_eval::MachineError,
        /// Pretty-printed term that failed to evaluate.
        dump: String,
    },
    /// The observable value changed across a pass.
    ValueChanged {
        /// Offending pass.
        pass: &'static str,
        /// Value before the pass.
        expected: Value,
        /// Value after the pass.
        got: Value,
        /// Pretty-printed input of the pass.
        before: String,
        /// Pretty-printed output of the pass.
        after: String,
    },
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Pass { pass, error } => {
                write!(f, "pass `{pass}` failed: {error}")
            }
            OracleError::Lint { pass, error, dump } => {
                write!(
                    f,
                    "pass `{pass}` broke typing: {error}\n--- output ---\n{dump}"
                )
            }
            OracleError::Eval { stage, error, dump } => {
                write!(
                    f,
                    "evaluation failed after {stage}: {error}\n--- term ---\n{dump}"
                )
            }
            OracleError::ValueChanged {
                pass,
                expected,
                got,
                before,
                after,
            } => write!(
                f,
                "pass `{pass}` changed the observable value: {expected} -> {got}\n\
                 --- before ---\n{before}\n--- after ---\n{after}"
            ),
        }
    }
}

impl std::error::Error for OracleError {}

/// Run `cfg`'s pipeline over `e` one pass at a time, evaluating before
/// and after every pass and checking value preservation and
/// lint-cleanliness at each step.
///
/// # Errors
///
/// Returns the first [`OracleError`] — identifying the offending pass —
/// or `Ok` with the per-pass [`DiffReport`].
pub fn differential(
    e: &Expr,
    data_env: &DataEnv,
    supply: &mut NameSupply,
    cfg: &OptConfig,
    mode: EvalMode,
    fuel: u64,
) -> Result<DiffReport, OracleError> {
    let reference = run(e, mode, fuel).map_err(|error| OracleError::Eval {
        stage: "input",
        error,
        dump: e.to_string(),
    })?;
    let mut cur = e.clone();
    let mut cur_metrics = reference.metrics;
    let mut passes = Vec::with_capacity(cfg.passes.len());
    for pass in &cfg.passes {
        let name = pass.name();
        let (next, rewrites, _changed) = apply_pass(&cur, data_env, supply, *pass, &cfg.simpl)
            .map_err(|error| OracleError::Pass { pass: name, error })?;
        if let Err(error) = lint(&next, data_env) {
            return Err(OracleError::Lint {
                pass: name,
                error,
                dump: next.to_string(),
            });
        }
        let out = run(&next, mode, fuel).map_err(|error| OracleError::Eval {
            stage: name,
            error,
            dump: next.to_string(),
        })?;
        if out.value != reference.value {
            return Err(OracleError::ValueChanged {
                pass: name,
                expected: reference.value,
                got: out.value,
                before: cur.to_string(),
                after: next.to_string(),
            });
        }
        passes.push(PassDiff {
            pass: name,
            rewrites,
            before: cur_metrics,
            after: out.metrics,
        });
        cur = next;
        cur_metrics = out.metrics;
    }
    Ok(DiffReport {
        value: reference.value,
        passes,
        optimized: cur,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fj_ast::{Dsl, Expr, PrimOp, Type};

    /// A contifiable program: `let go = \n. … tail-recursive … in go 10`.
    fn loopy() -> (Dsl, Expr) {
        let mut d = Dsl::new();
        let e = d.letrec_loop(
            "go",
            vec![("n", Type::Int)],
            Type::Int,
            |_, go, ps| {
                Expr::ite(
                    Expr::prim2(PrimOp::Le, Expr::var(&ps[0]), Expr::Lit(0)),
                    Expr::Lit(0),
                    Expr::apps(
                        Expr::var(go),
                        [Expr::prim2(PrimOp::Sub, Expr::var(&ps[0]), Expr::Lit(1))],
                    ),
                )
            },
            |_, go| Expr::apps(Expr::var(go), [Expr::Lit(10)]),
        );
        (d, e)
    }

    #[test]
    fn differential_accepts_sound_pipeline_and_reports_savings() {
        let (mut d, e) = loopy();
        let report = differential(
            &e,
            &d.data_env,
            &mut d.supply,
            &OptConfig::join_points(),
            EvalMode::CallByValue,
            1_000_000,
        )
        .expect("join_points pipeline must be sound");
        assert_eq!(report.passes.len(), OptConfig::join_points().passes.len());
        assert!(report.total_rewrites().contified > 0, "loop should contify");
        assert!(
            report.alloc_delta() <= 0,
            "optimization must not add allocations: {report:?}"
        );
    }

    #[test]
    fn differential_runs_under_all_modes() {
        let (d, e) = loopy();
        for mode in [
            EvalMode::CallByName,
            EvalMode::CallByNeed,
            EvalMode::CallByValue,
        ] {
            let mut supply = d.supply.clone();
            differential(
                &e,
                &d.data_env,
                &mut supply,
                &OptConfig::baseline(),
                mode,
                1_000_000,
            )
            .expect("baseline pipeline must be sound");
        }
    }
}
