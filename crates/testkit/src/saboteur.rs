//! Deliberate fault injection for the resilient pipeline.
//!
//! A [`Saboteur`] is a [`PassTap`] that corrupts the output of one chosen
//! pipeline pass in a deterministic, seed-driven way. Each corruption is
//! constructed so that Core Lint is *guaranteed* to reject the result:
//! the fault-injection suites assert that `optimize_resilient` catches
//! every injected fault, rolls the pass back, and still produces a
//! program that evaluates to the unoptimized program's value. Two extra
//! modes exercise the non-lint guards: an injected panic
//! (`catch_unwind` isolation) and an infinite spin (the per-pass
//! deadline).
//!
//! Corruption sites are chosen with the [`SplitMix64`] PRNG, so a failure
//! reproduces from `(mode, target pass, seed)` alone. A mode that finds
//! no eligible site in a given term injects nothing; callers consult
//! [`SaboteurHandle::fired`] to know whether a fault actually went in.

use crate::rng::SplitMix64;
use fj_ast::{occurs_free, Expr, LetBind, Name, Type};
use fj_core::{PassResult, PassTap};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The kinds of fault a [`Saboteur`] can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sabotage {
    /// Swap the right-hand sides of two case alternatives, moving a
    /// branch that uses its own field binders under the wrong pattern
    /// (Lint: unbound variable).
    SwapCaseAlts,
    /// Drop the last argument of a jump (Lint: arity mismatch).
    DropJumpArg,
    /// Rename a bound variable, orphaning its occurrences (Lint: unbound
    /// variable).
    RenameBoundVar,
    /// Change a `let` binder's type annotation to a function over itself
    /// (Lint: type mismatch at the binding).
    LieTypeAnnotation,
    /// Panic inside the pass (exercises `catch_unwind` isolation).
    InjectPanic,
    /// Spin until cancelled (exercises the per-pass deadline; only
    /// meaningful when the pipeline sets one).
    InjectSpin,
}

impl Sabotage {
    /// Every mode, for matrix tests.
    pub const ALL: [Sabotage; 6] = [
        Sabotage::SwapCaseAlts,
        Sabotage::DropJumpArg,
        Sabotage::RenameBoundVar,
        Sabotage::LieTypeAnnotation,
        Sabotage::InjectPanic,
        Sabotage::InjectSpin,
    ];

    /// Stable name for labels and failure messages.
    pub fn name(self) -> &'static str {
        match self {
            Sabotage::SwapCaseAlts => "swap-case-alts",
            Sabotage::DropJumpArg => "drop-jump-arg",
            Sabotage::RenameBoundVar => "rename-bound-var",
            Sabotage::LieTypeAnnotation => "lie-type-annotation",
            Sabotage::InjectPanic => "inject-panic",
            Sabotage::InjectSpin => "inject-spin",
        }
    }

    /// Does this mode corrupt the output term (as opposed to panicking or
    /// spinning)?
    pub fn corrupts_term(self) -> bool {
        !matches!(self, Sabotage::InjectPanic | Sabotage::InjectSpin)
    }
}

/// Shared view of how many faults a [`Saboteur`] actually injected.
#[derive(Clone, Debug)]
pub struct SaboteurHandle {
    fired: Arc<AtomicU64>,
}

impl SaboteurHandle {
    /// How many faults were injected so far (0 when the target pass found
    /// no eligible corruption site).
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::SeqCst)
    }
}

/// Build a sabotaging [`PassTap`] targeting the pipeline pass at
/// `target_pass` (zero-based), plus a handle reporting whether a fault
/// actually fired. Install it with
/// [`OptConfig::with_tap`](fj_core::OptConfig::with_tap).
pub fn saboteur(mode: Sabotage, target_pass: usize, seed: u64) -> (PassTap, SaboteurHandle) {
    let fired = Arc::new(AtomicU64::new(0));
    let handle = SaboteurHandle {
        fired: fired.clone(),
    };
    let rng = Mutex::new(SplitMix64::new(seed));
    let tap = PassTap::new(move |ctx, res: PassResult| {
        if ctx.index != target_pass {
            return res;
        }
        match mode {
            Sabotage::InjectPanic => {
                fired.fetch_add(1, Ordering::SeqCst);
                panic!("saboteur: injected panic in pass `{}`", ctx.pass);
            }
            Sabotage::InjectSpin => {
                fired.fetch_add(1, Ordering::SeqCst);
                // Cooperative spin: hold the pass hostage until the driver
                // abandons it (deadline) and sets the cancel flag.
                while !ctx.cancelled() {
                    std::thread::sleep(Duration::from_millis(1));
                }
                res
            }
            _ => match res {
                Ok((e, rw)) => {
                    let mut rng = rng.lock().expect("saboteur rng poisoned");
                    match corrupt(&e, mode, &mut rng) {
                        Some(bad) => {
                            fired.fetch_add(1, Ordering::SeqCst);
                            Ok((bad, rw))
                        }
                        None => Ok((e, rw)),
                    }
                }
                err => err,
            },
        }
    });
    (tap, handle)
}

/// Corrupt a term according to `mode`, or `None` when the term offers no
/// site where the corruption is guaranteed to be lint-detectable.
pub fn corrupt(e: &Expr, mode: Sabotage, rng: &mut SplitMix64) -> Option<Expr> {
    let unique = unique_binders(e);
    let total = {
        let mut n = 0usize;
        visit(e, &mut |node| {
            if eligible(node, mode, &unique) {
                n += 1;
            }
        });
        n
    };
    if total == 0 {
        return None;
    }
    let target = rng.below(total as u64) as usize;
    let mut seen = 0usize;
    let mut out = map_expr(e, &mut |node| {
        if eligible(&node, mode, &unique) {
            let hit = seen == target;
            seen += 1;
            if hit {
                return apply_corruption(node, mode, rng);
            }
        }
        node
    });
    // `map_expr` is bottom-up while `visit` is top-down, so re-count if
    // nothing fired (candidate orders differ); fall back to the first.
    if seen <= target {
        seen = 0;
        out = map_expr(e, &mut |node| {
            if eligible(&node, mode, &unique) && seen == 0 {
                seen += 1;
                return apply_corruption(node, mode, rng);
            }
            node
        });
    }
    Some(out)
}

/// Names bound exactly once in the whole term. Corruptions that orphan or
/// re-home occurrences are only safe (guaranteed lint-detectable) when
/// the binder's name cannot be captured by another binder of the same
/// name elsewhere.
fn unique_binders(e: &Expr) -> HashMap<Name, usize> {
    let mut counts: HashMap<Name, usize> = HashMap::new();
    let mut bump = |n: &Name| *counts.entry(n.clone()).or_insert(0) += 1;
    e.walk(&mut |node| match node {
        Expr::Lam(b, _) => bump(&b.name),
        Expr::TyLam(a, _) => bump(a),
        Expr::Let(bind, _) => {
            for b in bind.binders() {
                bump(&b.name);
            }
        }
        Expr::Join(jb, _) => {
            for d in jb.defs() {
                bump(&d.name);
                for p in &d.params {
                    bump(&p.name);
                }
            }
        }
        Expr::Case(_, alts) => {
            for alt in alts {
                for b in &alt.binders {
                    bump(&b.name);
                }
            }
        }
        _ => {}
    });
    counts
}

fn is_unique(n: &Name, unique: &HashMap<Name, usize>) -> bool {
    unique.get(n).copied().unwrap_or(0) == 1
}

/// Is this node an eligible corruption site for `mode`, i.e. one where
/// the corruption provably breaks Lint?
fn eligible(node: &Expr, mode: Sabotage, unique: &HashMap<Name, usize>) -> bool {
    match mode {
        Sabotage::SwapCaseAlts => match node {
            Expr::Case(_, alts) => alts.len() >= 2 && swap_source(alts, unique).is_some(),
            _ => false,
        },
        Sabotage::DropJumpArg => matches!(node, Expr::Jump(_, _, args, _) if !args.is_empty()),
        Sabotage::RenameBoundVar => match node {
            Expr::Lam(b, body) => is_unique(&b.name, unique) && occurs_free(&b.name, body),
            Expr::Let(LetBind::NonRec(b, _), body) => {
                is_unique(&b.name, unique) && occurs_free(&b.name, body)
            }
            _ => false,
        },
        Sabotage::LieTypeAnnotation => matches!(node, Expr::Let(LetBind::NonRec(..), _)),
        Sabotage::InjectPanic | Sabotage::InjectSpin => false,
    }
}

/// Find an alternative whose RHS uses one of its own (term-wide unique)
/// field binders: moving that RHS under a different pattern orphans the
/// occurrence.
fn swap_source(alts: &[fj_ast::Alt], unique: &HashMap<Name, usize>) -> Option<usize> {
    alts.iter().position(|alt| {
        alt.binders
            .iter()
            .any(|b| is_unique(&b.name, unique) && occurs_free(&b.name, &alt.rhs))
    })
}

fn apply_corruption(node: Expr, mode: Sabotage, rng: &mut SplitMix64) -> Expr {
    match (mode, node) {
        (Sabotage::SwapCaseAlts, Expr::Case(scrut, mut alts)) => {
            let unique = {
                // Recompute locally: binders unique within the case are
                // enough here, since the moved RHS stays inside it.
                let probe = Expr::Case(scrut.clone(), alts.clone());
                unique_binders(&probe)
            };
            let i = swap_source(&alts, &unique).unwrap_or(0);
            let mut j = rng.below(alts.len() as u64) as usize;
            if j == i {
                j = (j + 1) % alts.len();
            }
            let tmp = alts[i].rhs.clone();
            alts[i].rhs = alts[j].rhs.clone();
            alts[j].rhs = tmp;
            Expr::Case(scrut, alts)
        }
        (Sabotage::DropJumpArg, Expr::Jump(j, tys, mut args, ty)) => {
            args.pop();
            Expr::Jump(j, tys, args, ty)
        }
        (Sabotage::RenameBoundVar, Expr::Lam(mut b, body)) => {
            b.name = orphan_name(rng);
            Expr::Lam(b, body)
        }
        (Sabotage::RenameBoundVar, Expr::Let(LetBind::NonRec(mut b, rhs), body)) => {
            b.name = orphan_name(rng);
            Expr::Let(LetBind::NonRec(b, rhs), body)
        }
        (Sabotage::LieTypeAnnotation, Expr::Let(LetBind::NonRec(mut b, rhs), body)) => {
            b.ty = Type::fun(b.ty.clone(), b.ty.clone());
            Expr::Let(LetBind::NonRec(b, rhs), body)
        }
        (_, node) => node,
    }
}

/// A fresh binder name no occurrence can refer to (ids this large are
/// never handed out by program supplies).
fn orphan_name(rng: &mut SplitMix64) -> Name {
    Name::with_id("sabotaged", 0xFAB0_0000_0000_0000u64 | rng.below(1 << 32))
}

/// Top-down visit of every sub-expression (matches [`Expr::walk`]).
fn visit(e: &Expr, f: &mut impl FnMut(&Expr)) {
    e.walk(f);
}

/// Bottom-up structural map: rebuild every node, passing it through `f`.
fn map_expr(e: &Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::Var(_) | Expr::Lit(_) => e.clone(),
        Expr::Prim(op, args) => Expr::Prim(*op, args.iter().map(|a| map_expr(a, f)).collect()),
        Expr::Lam(b, body) => Expr::Lam(b.clone(), Expr::share(map_expr(body, f))),
        Expr::App(a, b) => Expr::App(Expr::share(map_expr(a, f)), Expr::share(map_expr(b, f))),
        Expr::TyLam(a, body) => Expr::TyLam(a.clone(), Expr::share(map_expr(body, f))),
        Expr::TyApp(a, t) => Expr::TyApp(Expr::share(map_expr(a, f)), t.clone()),
        Expr::Con(c, tys, args) => Expr::Con(
            c.clone(),
            tys.clone(),
            args.iter().map(|a| map_expr(a, f)).collect(),
        ),
        Expr::Case(s, alts) => Expr::Case(
            Expr::share(map_expr(s, f)),
            alts.iter()
                .map(|alt| fj_ast::Alt {
                    con: alt.con.clone(),
                    binders: alt.binders.clone(),
                    rhs: map_expr(&alt.rhs, f),
                })
                .collect(),
        ),
        Expr::Let(bind, body) => {
            let bind = match bind {
                LetBind::NonRec(b, rhs) => {
                    LetBind::NonRec(b.clone(), Expr::share(map_expr(rhs, f)))
                }
                LetBind::Rec(bs) => LetBind::Rec(
                    bs.iter()
                        .map(|(b, rhs)| (b.clone(), map_expr(rhs, f)))
                        .collect(),
                ),
            };
            Expr::Let(bind, Expr::share(map_expr(body, f)))
        }
        Expr::Join(jb, body) => {
            let jb = match jb {
                fj_ast::JoinBind::NonRec(d) => {
                    fj_ast::JoinBind::NonRec(std::sync::Arc::new(fj_ast::JoinDef {
                        name: d.name.clone(),
                        ty_params: d.ty_params.clone(),
                        params: d.params.clone(),
                        body: map_expr(&d.body, f),
                    }))
                }
                fj_ast::JoinBind::Rec(ds) => fj_ast::JoinBind::Rec(
                    ds.iter()
                        .map(|d| fj_ast::JoinDef {
                            name: d.name.clone(),
                            ty_params: d.ty_params.clone(),
                            params: d.params.clone(),
                            body: map_expr(&d.body, f),
                        })
                        .collect(),
                ),
            };
            Expr::Join(jb, Expr::share(map_expr(body, f)))
        }
        Expr::Jump(j, tys, args, ty) => Expr::Jump(
            j.clone(),
            tys.clone(),
            args.iter().map(|a| map_expr(a, f)).collect(),
            ty.clone(),
        ),
    };
    f(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{build_closed, gen};
    use fj_core::{optimize_resilient, OptConfig, PassOutcome};
    use fj_eval::{run, EvalMode};

    const FUEL: u64 = 5_000_000;
    const CASES: u64 = 12;

    /// Expected rollback tag per sabotage mode.
    fn expected_tag(mode: Sabotage) -> &'static str {
        match mode {
            Sabotage::InjectPanic => "panic",
            Sabotage::InjectSpin => "deadline",
            _ => "lint",
        }
    }

    /// The fault-injection property, over generated programs: every fault
    /// that fires is caught and rolled back at the targeted pass, and the
    /// final program computes the same value as the unoptimized input.
    fn sabotage_generated(mode: Sabotage, target: usize, cases: u64) {
        let mut fired_total = 0u64;
        for case in 0..cases {
            let mut rng = SplitMix64::new(0xDEAD_0000 + case);
            let g = gen(&mut rng, 4);
            let (mut d, e) = build_closed(&g);
            let Ok(reference) = run(&e, EvalMode::CallByValue, FUEL) else {
                continue;
            };
            let (tap, handle) = saboteur(mode, target, 0xBEEF + case);
            let mut cfg = OptConfig::join_points().with_tap(tap);
            if mode == Sabotage::InjectSpin {
                cfg = cfg.with_pass_deadline(Duration::from_millis(40));
            }
            let (out, report) = optimize_resilient(&e, &d.data_env, &mut d.supply, &cfg)
                .expect("resilient pipeline never fails");
            // The cooperative spin is abandoned by the deadline but exits
            // once cancelled: the report may observe a transiently leaked
            // worker, never an accumulation past the spawn cap.
            assert!(
                report.leaked_workers <= fj_core::MAX_LEAKED_WORKERS,
                "mode {} case {case}: {} leaked workers exceeds the cap",
                mode.name(),
                report.leaked_workers
            );
            let fired = handle.fired();
            fired_total += fired;
            let rolled: Vec<_> = report.rolled_back().collect();
            assert_eq!(
                rolled.len() as u64,
                fired,
                "mode {} case {case}: {} faults fired but {} passes rolled back",
                mode.name(),
                fired,
                rolled.len()
            );
            if fired > 0 {
                assert_eq!(rolled[0].pass, cfg.passes[target].name());
                let PassOutcome::RolledBack(reason) = &rolled[0].outcome else {
                    unreachable!()
                };
                assert_eq!(
                    reason.tag(),
                    expected_tag(mode),
                    "mode {} case {case}: wrong rollback reason: {reason}",
                    mode.name()
                );
            }
            let after = run(&out, EvalMode::CallByValue, FUEL)
                .expect("sabotaged-then-rolled-back program must still run");
            assert_eq!(
                reference.value,
                after.value,
                "mode {} case {case}: value changed",
                mode.name()
            );
        }
        assert!(
            fired_total > 0,
            "mode {} never fired over {cases} programs — the matrix is vacuous",
            mode.name()
        );
        if mode == Sabotage::InjectSpin {
            drain_leaked_workers(mode);
        }
    }

    /// Cooperatively-cancelled spins must actually unwind: wait for the
    /// process-wide leaked-worker counter to settle back to zero.
    fn drain_leaked_workers(mode: Sabotage) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while fj_core::leaked_guard_workers() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "mode {}: {} abandoned workers never drained",
                mode.name(),
                fj_core::leaked_guard_workers()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn swap_case_alts_is_caught_and_rolled_back() {
        // Target the first Float In: the generator's case scrutinees are
        // known constructors, so the simplifier erases cases soon after.
        sabotage_generated(Sabotage::SwapCaseAlts, 0, CASES);
    }

    #[test]
    fn drop_jump_arg_is_caught_and_rolled_back() {
        sabotage_generated(Sabotage::DropJumpArg, 5, CASES);
    }

    #[test]
    fn rename_bound_var_is_caught_and_rolled_back() {
        sabotage_generated(Sabotage::RenameBoundVar, 0, CASES);
    }

    #[test]
    fn lie_type_annotation_is_caught_and_rolled_back() {
        sabotage_generated(Sabotage::LieTypeAnnotation, 0, CASES);
    }

    #[test]
    fn inject_panic_is_caught_and_rolled_back() {
        sabotage_generated(Sabotage::InjectPanic, 7, CASES);
    }

    #[test]
    fn inject_spin_hits_the_deadline_and_rolls_back() {
        sabotage_generated(Sabotage::InjectSpin, 0, 4);
    }

    #[test]
    fn corruption_is_deterministic_for_a_seed() {
        let mut rng = SplitMix64::new(99);
        let g = gen(&mut rng, 4);
        let (_, e) = build_closed(&g);
        let a = corrupt(&e, Sabotage::LieTypeAnnotation, &mut SplitMix64::new(5));
        let b = corrupt(&e, Sabotage::LieTypeAnnotation, &mut SplitMix64::new(5));
        assert_eq!(a, b);
    }
}
