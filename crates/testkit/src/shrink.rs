//! Greedy counterexample shrinking.
//!
//! Because every [`G`] subtree is itself a closed program (see
//! [`crate::gen`]), a shrink step never has to repair scoping: candidates
//! are (a) the node collapsed to a literal, (b) any direct child hoisted
//! into the node's place, (c) loop iteration counts reduced, and (d) the
//! same moves applied to one child in place. We greedily take the first
//! candidate that still fails the property and repeat until no candidate
//! fails or the evaluation budget runs out.

use crate::gen::G;

/// Upper bound on property evaluations during one shrink run.
pub const DEFAULT_SHRINK_BUDGET: u32 = 2_000;

/// Shrink `g` while `fails` keeps returning `Some(message)`. Returns the
/// smallest failing description found and its failure message.
pub fn shrink<F>(g: &G, fails: &mut F, mut budget: u32) -> (G, String)
where
    F: FnMut(&G) -> Option<String>,
{
    let mut cur = g.clone();
    let mut msg = fails(&cur).unwrap_or_else(|| "property passed on the original case".into());
    loop {
        let mut advanced = false;
        for cand in candidates(&cur) {
            if budget == 0 {
                return (cur, msg);
            }
            if measure(&cand) >= measure(&cur) {
                continue;
            }
            budget -= 1;
            if let Some(m) = fails(&cand) {
                cur = cand;
                msg = m;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return (cur, msg);
        }
    }
}

/// Well-founded progress measure: node count first, then the magnitude
/// of the scalars (loop counts, literals, variable indices), so
/// structure-preserving simplifications also count as progress.
fn measure(g: &G) -> (usize, u64) {
    let mut scalars = match g {
        G::Lit(n) => n.unsigned_abs() as u64,
        G::Var(i) => u64::from(*i),
        G::Loop { iters, .. } => u64::from(*iters),
        // A mutual group counts one scalar above its single-label
        // demotion so the structure-preserving demotion is progress.
        G::JoinLoop { mutual, iters, .. } => u64::from(*iters) + u64::from(*mutual),
        G::Jump(i, _) => u64::from(*i),
        _ => 0,
    };
    for c in g.children() {
        scalars += measure(c).1;
    }
    (g.size(), scalars)
}

/// Strictly-smaller variants of `g`, most aggressive first.
fn candidates(g: &G) -> Vec<G> {
    let mut out = Vec::new();
    // Collapse the whole node to the simplest leaf.
    if !matches!(g, G::Lit(0)) {
        out.push(G::Lit(0));
    }
    // Hoist each child into the node's place.
    for c in g.children() {
        out.push((*c).clone());
    }
    // Structure-preserving simplifications.
    if let G::Loop { iters, init, step } = g {
        if *iters > 0 {
            out.push(G::Loop {
                iters: iters / 2,
                init: init.clone(),
                step: step.clone(),
            });
        }
    }
    if let G::JoinLoop {
        mutual,
        iters,
        init,
        step,
        done,
    } = g
    {
        // Demote a mutual group to a single self-recursive label before
        // halving the iteration count: structure first, scalars second.
        if *mutual {
            out.push(G::JoinLoop {
                mutual: false,
                iters: *iters,
                init: init.clone(),
                step: step.clone(),
                done: done.clone(),
            });
        }
        if *iters > 0 {
            out.push(G::JoinLoop {
                mutual: *mutual,
                iters: iters / 2,
                init: init.clone(),
                step: step.clone(),
                done: done.clone(),
            });
        }
    }
    if let G::Lit(n) = g {
        if *n != 0 {
            out.push(G::Lit(n / 2));
        }
    }
    if let G::Var(i) = g {
        if *i != 0 {
            out.push(G::Var(i / 2));
        }
    }
    // Recurse: shrink one child in place.
    let kids: Vec<G> = g.children().into_iter().cloned().collect();
    for (i, kid) in kids.iter().enumerate() {
        for cand in candidates(kid) {
            let mut new_kids = kids.clone();
            new_kids[i] = cand;
            out.push(g.with_children(new_kids));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_minimal_loop() {
        // Property: "no Loop with iters >= 4 anywhere". Start from a big
        // nested failing case; the shrinker should find a bare loop.
        fn has_big_loop(g: &G) -> bool {
            matches!(g, G::Loop { iters, .. } if *iters >= 4)
                || g.children().iter().any(|c| has_big_loop(c))
        }
        let start = G::Add(
            Box::new(G::Let(
                Box::new(G::Lit(3)),
                Box::new(G::Loop {
                    iters: 9,
                    init: Box::new(G::Mul(Box::new(G::Lit(2)), Box::new(G::Var(1)))),
                    step: Box::new(G::Lit(5)),
                }),
            )),
            Box::new(G::Lit(7)),
        );
        let mut fails = |g: &G| has_big_loop(g).then(|| "big loop".to_string());
        let (min, _) = shrink(&start, &mut fails, DEFAULT_SHRINK_BUDGET);
        // Minimal failing case: a loop with iters in 4..8 (halving stops
        // once the property would pass) and literal-0 leaves.
        match &min {
            G::Loop { iters, init, step } => {
                assert!(*iters >= 4 && *iters < 8, "iters not minimized: {iters}");
                assert_eq!(**init, G::Lit(0));
                assert_eq!(**step, G::Lit(0));
            }
            other => panic!("expected a bare loop, got {other:?}"),
        }
    }

    #[test]
    fn passing_case_is_returned_unchanged() {
        let g = G::Lit(5);
        let (min, msg) = shrink(&g, &mut |_| None, 10);
        assert_eq!(min, g);
        assert!(msg.contains("passed"));
    }
}
