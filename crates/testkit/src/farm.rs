//! The fuzz farm: every compile route, cross-checked pairwise, in
//! parallel, with shrinking repros.
//!
//! [`run_farm`] fans generated programs out over the same scoped-thread
//! pool that backs `optimize_many` ([`fj_core::par_map`]) and runs each
//! one through the full **route matrix**:
//!
//! | routes                  | oracle                                   |
//! |-------------------------|------------------------------------------|
//! | generator vs lint       | generated programs are well typed        |
//! | reference vs machine    | the unoptimized term runs to a value     |
//! | strict vs resilient     | α-equal optimized output                 |
//! | cache-cold vs strict    | a cold [`OptCache`] compile verifies     |
//! | cache-hit vs cache-cold | the hit is served and α-equal            |
//! | machine-unopt vs -opt   | optimization preserves the value         |
//! | machine vs vm           | same value **and** allocation counters   |
//! | vm-unfused vs vm-fused  | superinstruction fusion preserves both   |
//!
//! Every route runs under the existing guards — per-pass deadlines in
//! the pipeline, fuel plus a wall-clock deadline in both backends — so
//! a pathological generated program degrades into a reported failure,
//! never a hung farm.
//!
//! Failures shrink with the same-route-pair predicate (the minimal
//! repro must fail the *same* oracle, not just any oracle) and are
//! written to `fuzz/corpus/<case-seed>.fj` as comment-headed files
//! whose `-- gen:` line replays through [`crate::codec`].
//!
//! Seed discipline: a farm is identified by one root seed; case `i`
//! derives `case_seed = mix(root, i)` and every random choice in that
//! case flows from it, so any failure replays standalone from the
//! numbers in its repro header.

use crate::codec;
use crate::gen::{build_closed, gen, G};
use crate::rng::SplitMix64;
use crate::saboteur::{saboteur, Sabotage};
use crate::shrink::{shrink, DEFAULT_SHRINK_BUDGET};
use fj_ast::alpha_eq;
use fj_core::{
    optimize_cached, optimize_resilient, optimize_with_report, par_map, OptCache, OptConfig,
};
use fj_eval::EvalMode;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Farm settings. [`FarmConfig::default`] matches the CI smoke tier's
/// shape (fixed seed, bounded budgets); the CLI exposes every knob.
#[derive(Clone, Debug)]
pub struct FarmConfig {
    /// Root seed; every case derives its own seed from it.
    pub seed: u64,
    /// Number of generated programs.
    pub cases: u32,
    /// Generator nesting depth for ordinary (non-adversarial) cases.
    pub depth: u32,
    /// Machine fuel for the reference and optimized runs (the VM gets
    /// 10× this, its documented instruction/step ratio).
    pub fuel: u64,
    /// Wall-clock deadline per execution route.
    pub exec_deadline: Duration,
    /// Per-pass deadline inside the optimizer pipelines.
    pub pass_deadline: Duration,
    /// Stop claiming new cases once this much wall time has elapsed
    /// (already-claimed cases finish; the farm reports how many were
    /// skipped). `None` runs every case.
    pub time_budget: Option<Duration>,
    /// Property-evaluation budget when shrinking a failure.
    pub shrink_budget: u32,
    /// Mix adversarial bands (deep nesting, huge terms, duplicated
    /// subtrees) into the case stream.
    pub adversarial: bool,
    /// Where to write shrunk repros (`None` disables writing).
    pub corpus_dir: Option<PathBuf>,
    /// Corrupt the strict route's pipeline with this saboteur
    /// (mode, target pass): the farm's own self-test. A fired fault
    /// must surface as a strict-vs-resilient mismatch.
    pub sabotage: Option<(Sabotage, usize)>,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            seed: 1,
            cases: 256,
            depth: crate::gen::DEFAULT_DEPTH,
            fuel: 5_000_000,
            exec_deadline: Duration::from_secs(2),
            pass_deadline: Duration::from_secs(1),
            time_budget: None,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            adversarial: true,
            corpus_dir: None,
            sabotage: None,
        }
    }
}

/// A pair of routes whose cross-check failed, e.g.
/// `("strict", "resilient")`.
pub type RoutePair = (&'static str, &'static str);

/// One cross-check failure, shrunk to a minimal description.
#[derive(Clone, Debug)]
pub struct FarmFailure {
    /// Which case failed.
    pub case: u32,
    /// The case's standalone replay seed.
    pub case_seed: u64,
    /// The route pair that disagreed (stable after shrinking by
    /// construction).
    pub routes: RoutePair,
    /// The original failure message.
    pub message: String,
    /// Node count of the originally generated description.
    pub original_size: usize,
    /// The shrunk description.
    pub shrunk: G,
    /// The failure message of the shrunk description.
    pub shrunk_message: String,
    /// Where the repro was written, when a corpus directory is set.
    pub repro: Option<PathBuf>,
}

/// Aggregate farm outcome.
#[derive(Clone, Debug, Default)]
pub struct FarmReport {
    /// Cases actually run.
    pub cases_run: u32,
    /// Cases skipped by the time budget.
    pub cases_skipped: u32,
    /// Programs containing a join point or jump.
    pub join_programs: u32,
    /// Cases drawn from an adversarial band.
    pub adversarial_cases: u32,
    /// All cross-check failures, shrunk.
    pub failures: Vec<FarmFailure>,
    /// Wall-clock time for the whole farm.
    pub elapsed: Duration,
}

impl FarmReport {
    /// Did every route pair agree on every case?
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Derive the standalone seed for case `i` of a farm.
pub fn case_seed(root: u64, case: u32) -> u64 {
    root ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Which band a case is drawn from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Band {
    /// Plain grammar sample at [`FarmConfig::depth`].
    Plain,
    /// A deep linear binder chain (recursive-traversal stress).
    Deep,
    /// A wide term near the optimizer's growth budget.
    Wide,
    /// One subtree duplicated exponentially (CSE / shared-subtree
    /// stress: maximal sharing opportunity, maximal clone pressure).
    Dup,
}

/// Generate case `i`'s program description. Adversarial bands take
/// three slots in every eight cases.
fn gen_case(cfg: &FarmConfig, case: u32) -> (G, Band) {
    let mut rng = SplitMix64::new(case_seed(cfg.seed, case));
    let band = if cfg.adversarial {
        match case % 8 {
            5 => Band::Deep,
            6 => Band::Wide,
            7 => Band::Dup,
            _ => Band::Plain,
        }
    } else {
        Band::Plain
    };
    let g = match band {
        Band::Plain => gen(&mut rng, cfg.depth),
        Band::Deep => {
            // A let-chain a couple hundred binders deep: every pass,
            // the lint, and both backends traverse the full spine.
            let n = 192 + rng.below(64) as usize;
            let mut g = gen(&mut rng, 1);
            for _ in 0..n {
                let leaf = gen(&mut rng, 0);
                g = G::Let(Box::new(leaf), Box::new(g));
            }
            g
        }
        Band::Wide => {
            // A balanced arithmetic tree of ~2^8 nodes: big enough to
            // brush the growth budget's floor once passes duplicate
            // contexts into branches.
            fn tree(rng: &mut SplitMix64, level: u32) -> G {
                if level == 0 {
                    gen(rng, 1)
                } else {
                    G::Add(
                        Box::new(tree(rng, level - 1)),
                        Box::new(tree(rng, level - 1)),
                    )
                }
            }
            tree(&mut rng, 7)
        }
        Band::Dup => {
            // The same subtree doubled k times: 2^k textual copies of
            // one expression — the worst case for shared-subtree
            // bookkeeping and the best case for CSE.
            let k = 5 + rng.below(3);
            let mut g = gen(&mut rng, 2);
            for _ in 0..k {
                g = G::Add(Box::new(g.clone()), Box::new(g));
            }
            g
        }
    };
    (g, band)
}

/// Run the full route matrix over one description. `Ok(contains_joins)`
/// when every pair agrees; otherwise the failing pair and a message.
///
/// Public so corpus repro files (the `-- gen:` line, via
/// [`crate::codec::parse`]) can be replayed as ordinary tests: a pinned
/// past failure re-runs the exact oracle that caught it.
pub fn check_routes(cfg: &FarmConfig, g: &G, seed: u64) -> Result<bool, (RoutePair, String)> {
    let (d, e) = build_closed(g);
    let joins = e.has_join_or_jump();

    // generator vs lint: the program must be well typed.
    fj_check::lint(&e, &d.data_env).map_err(|err| {
        (
            ("generator", "lint"),
            format!("ill-typed generator output: {err}"),
        )
    })?;

    // reference vs machine: the unoptimized term runs to a value.
    let reference =
        fj_eval::run_with_limits(&e, EvalMode::CallByValue, cfg.fuel, Some(cfg.exec_deadline))
            .map_err(|err| {
                (
                    ("reference", "machine"),
                    format!("unoptimized term failed to run: {err}"),
                )
            })?;

    let clean_cfg = OptConfig::join_points().with_pass_deadline(cfg.pass_deadline);

    // strict route — the only route the saboteur may tap. Lint between
    // passes is off under sabotage so an injected corruption flows into
    // the output (where the cross-check must catch it) instead of
    // erroring inside the pipeline.
    let strict_cfg = match cfg.sabotage {
        Some((mode, target)) => {
            let (tap, _handle) = saboteur(mode, target, seed);
            OptConfig::join_points()
                .with_pass_deadline(cfg.pass_deadline)
                .with_tap(tap)
                .with_lint(false)
        }
        None => clean_cfg.clone(),
    };
    let mut strict_supply = d.supply.clone();
    let (strict_out, _) = optimize_with_report(&e, &d.data_env, &mut strict_supply, &strict_cfg)
        .map_err(|err| {
            (
                ("strict", "optimizer"),
                format!("strict pipeline failed: {err}"),
            )
        })?;

    // resilient route, never tapped: under sabotage it is the clean
    // reference the corrupted strict output is compared against.
    let mut res_supply = d.supply.clone();
    let (resilient_out, _) = optimize_resilient(&e, &d.data_env, &mut res_supply, &clean_cfg)
        .map_err(|err| {
            (
                ("resilient", "optimizer"),
                format!("resilient pipeline failed: {err}"),
            )
        })?;
    if !alpha_eq(&strict_out, &resilient_out) {
        return Err((
            ("strict", "resilient"),
            format!(
                "strict and resilient outputs are not α-equal\nstrict:\n{strict_out}\nresilient:\n{resilient_out}"
            ),
        ));
    }

    // cold vs cached compile: the first lookup must miss, verify
    // α-equal to the direct pipeline; the second must hit and verify.
    // The budget is unbounded on purpose: the hit oracle below demands
    // that *every* term is cacheable, including the adversarial
    // huge-term band, which a finite byte budget would refuse.
    let cache = OptCache::with_budget(2, usize::MAX);
    let mut cold_supply = d.supply.clone();
    let (cold_out, _, cold_hit) =
        optimize_cached(&e, &d.data_env, &mut cold_supply, &clean_cfg, false, &cache).map_err(
            |err| {
                (
                    ("cache-cold", "optimizer"),
                    format!("cold cached compile failed: {err}"),
                )
            },
        )?;
    if cold_hit {
        return Err((
            ("cache-cold", "cache"),
            "first compile reported a hit on an empty cache".into(),
        ));
    }
    if !alpha_eq(&cold_out, &resilient_out) {
        return Err((
            ("cache-cold", "strict"),
            format!(
                "cold cached output diverges from the direct pipeline\ncached:\n{cold_out}\ndirect:\n{resilient_out}"
            ),
        ));
    }
    let mut hit_supply = d.supply.clone();
    let (hit_out, _, hit) =
        optimize_cached(&e, &d.data_env, &mut hit_supply, &clean_cfg, false, &cache).map_err(
            |err| {
                (
                    ("cache-hit", "optimizer"),
                    format!("warm cached compile failed: {err}"),
                )
            },
        )?;
    if !hit {
        return Err((
            ("cache-hit", "cache"),
            "second compile of an identical term missed the cache".into(),
        ));
    }
    if !alpha_eq(&hit_out, &cold_out) {
        return Err((
            ("cache-hit", "cache-cold"),
            format!("cache hit served a different term\nhit:\n{hit_out}\ncold:\n{cold_out}"),
        ));
    }

    // machine-unopt vs machine-opt: optimization preserves the value.
    let optimized = fj_eval::run_with_limits(
        &strict_out,
        EvalMode::CallByValue,
        cfg.fuel,
        Some(cfg.exec_deadline),
    )
    .map_err(|err| {
        (
            ("machine-unopt", "machine-opt"),
            format!("optimized term failed to run: {err}"),
        )
    })?;
    if optimized.value != reference.value {
        return Err((
            ("machine-unopt", "machine-opt"),
            format!(
                "optimization changed the value: {} before, {} after\noptimized term:\n{strict_out}",
                reference.value, optimized.value
            ),
        ));
    }

    // machine vs vm: same value, same allocation counters, on the
    // optimized term. The VM's fuel unit is instructions (~10× machine
    // transitions).
    let vm = fj_vm::run_with_limits(
        &strict_out,
        EvalMode::CallByValue,
        cfg.fuel.saturating_mul(10),
        Some(cfg.exec_deadline),
    )
    .map_err(|err| (("machine", "vm"), format!("vm failed to run: {err}")))?;
    if vm.value != optimized.value {
        return Err((
            ("machine", "vm"),
            format!(
                "backends disagree on the value: machine {} vs vm {}",
                optimized.value, vm.value
            ),
        ));
    }
    let (m, v) = (&optimized.metrics, &vm.metrics);
    if (m.let_allocs, m.arg_allocs, m.con_allocs, m.jumps)
        != (v.let_allocs, v.arg_allocs, v.con_allocs, v.jumps)
    {
        return Err((
            ("machine", "vm"),
            format!(
                "backends disagree on allocation counters: machine let={} arg={} con={} jumps={} vs vm let={} arg={} con={} jumps={}",
                m.let_allocs, m.arg_allocs, m.con_allocs, m.jumps,
                v.let_allocs, v.arg_allocs, v.con_allocs, v.jumps
            ),
        ));
    }

    // vm-unfused vs vm-fused: the superinstruction peephole must be
    // invisible — same value, same allocation counters. Both streams
    // are compiled explicitly so the oracle holds regardless of the
    // FJ_VM_FUSE default.
    let vm_route = |fuse: bool| {
        let prog = fj_vm::compile_with(
            &strict_out,
            EvalMode::CallByValue,
            fj_vm::CompileOpts { fuse },
        )
        .map_err(|err| {
            (
                ("vm-unfused", "vm-fused"),
                format!("vm compile (fuse={fuse}) failed: {err}"),
            )
        })?;
        fj_vm::run_program_with_limits(&prog, cfg.fuel.saturating_mul(10), Some(cfg.exec_deadline))
            .map_err(|err| {
                (
                    ("vm-unfused", "vm-fused"),
                    format!("vm (fuse={fuse}) failed to run: {err}"),
                )
            })
    };
    let unfused = vm_route(false)?;
    let fused = vm_route(true)?;
    if fused.value != unfused.value {
        return Err((
            ("vm-unfused", "vm-fused"),
            format!(
                "fusion changed the value: unfused {} vs fused {}",
                unfused.value, fused.value
            ),
        ));
    }
    let (u, f) = (&unfused.metrics, &fused.metrics);
    if (u.let_allocs, u.arg_allocs, u.con_allocs, u.jumps)
        != (f.let_allocs, f.arg_allocs, f.con_allocs, f.jumps)
    {
        return Err((
            ("vm-unfused", "vm-fused"),
            format!(
                "fusion changed the counters: unfused let={} arg={} con={} jumps={} vs fused let={} arg={} con={} jumps={}",
                u.let_allocs, u.arg_allocs, u.con_allocs, u.jumps,
                f.let_allocs, f.arg_allocs, f.con_allocs, f.jumps
            ),
        ));
    }

    Ok(joins)
}

/// Per-case outcome, before aggregation.
enum CaseOutcome {
    Pass { joins: bool, band: Band },
    Skipped,
    Fail(Box<FarmFailure>),
}

fn run_case(cfg: &FarmConfig, case: u32, farm_start: Instant) -> CaseOutcome {
    if let Some(budget) = cfg.time_budget {
        if farm_start.elapsed() >= budget {
            return CaseOutcome::Skipped;
        }
    }
    let seed = case_seed(cfg.seed, case);
    let (g, band) = gen_case(cfg, case);
    match check_routes(cfg, &g, seed) {
        Ok(joins) => CaseOutcome::Pass { joins, band },
        Err((routes, message)) => {
            // Shrink under the *same-route-pair* predicate: the minimal
            // repro must fail the same cross-check, not just any check.
            let mut fails = |cand: &G| match check_routes(cfg, cand, seed) {
                Err((r, m)) if r == routes => Some(m),
                _ => None,
            };
            let (shrunk, shrunk_message) = shrink(&g, &mut fails, cfg.shrink_budget);
            CaseOutcome::Fail(Box::new(FarmFailure {
                case,
                case_seed: seed,
                routes,
                message,
                original_size: g.size(),
                shrunk,
                shrunk_message,
                repro: None,
            }))
        }
    }
}

/// Run the farm: generate, fan out over the scoped-thread pool, cross-
/// check, shrink failures, write repros.
pub fn run_farm(cfg: &FarmConfig) -> FarmReport {
    let start = Instant::now();
    let outcomes = par_map((0..cfg.cases).collect(), |case| run_case(cfg, case, start));
    let mut report = FarmReport::default();
    for outcome in outcomes {
        match outcome {
            CaseOutcome::Pass { joins, band } => {
                report.cases_run += 1;
                report.join_programs += u32::from(joins);
                report.adversarial_cases += u32::from(band != Band::Plain);
            }
            CaseOutcome::Skipped => report.cases_skipped += 1,
            CaseOutcome::Fail(mut failure) => {
                report.cases_run += 1;
                if let Some(dir) = &cfg.corpus_dir {
                    match write_repro(dir, &failure) {
                        Ok(path) => failure.repro = Some(path),
                        Err(err) => failure
                            .message
                            .push_str(&format!("\n(writing the repro failed: {err})")),
                    }
                }
                report.failures.push(*failure);
            }
        }
    }
    report.elapsed = start.elapsed();
    report
}

/// Write a shrunk failure as a comment-headed corpus file. The
/// `-- gen:` line is authoritative (replayable via [`codec::parse`]);
/// the pretty-printed term below it is for human eyes.
fn write_repro(dir: &Path, failure: &FarmFailure) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{:016x}.fj", failure.case_seed));
    let (_, term) = build_closed(&failure.shrunk);
    let mut content = String::new();
    content.push_str("-- fj fuzz repro (auto-shrunk)\n");
    content.push_str(&format!(
        "-- case-seed: {:#018x} (case {})\n",
        failure.case_seed, failure.case
    ));
    content.push_str(&format!(
        "-- routes: {} vs {}\n",
        failure.routes.0, failure.routes.1
    ));
    for line in failure.shrunk_message.lines().take(1) {
        content.push_str(&format!("-- error: {line}\n"));
    }
    content.push_str(&format!("-- gen: {}\n", codec::to_text(&failure.shrunk)));
    content.push_str("--\n-- shrunk core term:\n");
    for line in term.to_string().lines() {
        content.push_str("--   ");
        content.push_str(line);
        content.push('\n');
    }
    std::fs::write(&path, content)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(cases: u32) -> FarmConfig {
        FarmConfig {
            cases,
            fuel: 2_000_000,
            ..FarmConfig::default()
        }
    }

    #[test]
    fn clean_farm_agrees_on_every_route() {
        let report = run_farm(&quick(48));
        assert!(
            report.ok(),
            "route cross-checks failed: {:?}",
            report
                .failures
                .iter()
                .map(|f| (f.routes, f.message.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(report.cases_run, 48);
        assert!(report.join_programs > 0, "no join programs in the sample");
        assert!(report.adversarial_cases > 0, "no adversarial bands ran");
    }

    #[test]
    fn sabotaged_farm_pins_failures_to_the_strict_route() {
        // Corrupt the first pass's output on the strict route only.
        // Every surfaced failure must be pinned to the strict route:
        // either the corrupted output diverges from the clean resilient
        // compile (strict vs resilient) or a later pass of the strict
        // pipeline rejects the corrupted term (strict vs optimizer) —
        // and at least one α-divergence must be observed.
        let dir = std::env::temp_dir().join(format!("fj-farm-test-{}", std::process::id()));
        let cfg = FarmConfig {
            sabotage: Some((Sabotage::SwapCaseAlts, 0)),
            corpus_dir: Some(dir.clone()),
            ..quick(64)
        };
        let report = run_farm(&cfg);
        assert!(
            !report.ok(),
            "the saboteur never surfaced over {} cases",
            report.cases_run
        );
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.routes == ("strict", "resilient")),
            "no strict-vs-resilient divergence among the failures"
        );
        for f in &report.failures {
            assert_eq!(
                f.routes.0, "strict",
                "sabotage surfaced on an unexpected route pair {:?}: {}",
                f.routes, f.message
            );
            let path = f.repro.as_ref().expect("repro file was not written");
            let text = std::fs::read_to_string(path).expect("repro file unreadable");
            assert!(
                text.contains(&format!("-- routes: {} vs {}", f.routes.0, f.routes.1)),
                "repro does not name the failing route pair:\n{text}"
            );
            let gen_line = text
                .lines()
                .find_map(|l| l.strip_prefix("-- gen: "))
                .expect("repro has no -- gen: line");
            let replayed = codec::parse(gen_line).expect("repro gen line does not parse");
            assert_eq!(
                replayed, f.shrunk,
                "repro gen line diverges from the failure"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shrinking_compresses_sabotage_failures() {
        // Shrinker quality bar: every saboteur-seeded failure must
        // shrink to a description that (a) still fails the *same*
        // oracle when replayed from scratch and (b) — for failures
        // that started big enough to have room — is at most a quarter
        // of the original node count.
        let cfg = FarmConfig {
            sabotage: Some((Sabotage::SwapCaseAlts, 0)),
            ..quick(192)
        };
        let report = run_farm(&cfg);
        assert!(
            !report.ok(),
            "the saboteur never surfaced over {} cases",
            report.cases_run
        );
        let mut sizeable = 0;
        for f in &report.failures {
            match check_routes(&cfg, &f.shrunk, f.case_seed) {
                Err((routes, _)) => assert_eq!(
                    routes, f.routes,
                    "replayed shrunk repro fails a different oracle"
                ),
                Ok(_) => panic!(
                    "shrunk repro for case {} no longer fails: {}",
                    f.case, f.shrunk_message
                ),
            }
            // Small originals have no room to shrink 4× — the minimal
            // case-swap repro is already ~6 nodes — so only hold the
            // ratio bar over failures with real structure.
            if f.original_size >= 32 {
                sizeable += 1;
                let shrunk_size = f.shrunk.size();
                assert!(
                    shrunk_size * 4 <= f.original_size,
                    "case {} shrank {} -> {} nodes, worse than 25%",
                    f.case,
                    f.original_size,
                    shrunk_size
                );
            }
        }
        assert!(
            sizeable >= 3,
            "only {sizeable} sizeable failures; the ratio bar was barely exercised"
        );
    }

    #[test]
    fn time_budget_skips_instead_of_hanging() {
        let cfg = FarmConfig {
            time_budget: Some(Duration::ZERO),
            ..quick(32)
        };
        let report = run_farm(&cfg);
        assert_eq!(report.cases_run + report.cases_skipped, 32);
        assert!(report.cases_skipped > 0, "zero budget skipped nothing");
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..16).map(|i| case_seed(1, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| case_seed(1, i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), a.len(), "case seeds collide");
    }
}
