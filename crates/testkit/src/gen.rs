//! The well-typed program generator.
//!
//! Programs are described by a small grammar [`G`] in which **every**
//! subtree is itself a closed, total, `Int`-typed program: variable
//! references index the enclosing binder environment *modulo its length*
//! and degrade to literals when no binder is in scope. That closure
//! property is what makes shrinking trivial — replacing any node by any
//! of its subtrees (or a literal) yields another valid test case, so the
//! shrinker never needs to repair scoping.
//!
//! The grammar deliberately exercises the paper's machinery: `let`
//! bindings (inlining, floating), branching on a known `Maybe`
//! (case-of-known-constructor, case-of-case once contexts pile up),
//! terminating accumulator loops (`letrec`, the contification target),
//! and — the paper's central construct — join points: non-recursive
//! joins with conditional jumps, recursive (optionally mutual) join
//! groups, and jumps from nested tail positions.
//!
//! Join points obey the same closure discipline as variables: a label
//! environment is threaded only into *tail* positions (mirroring the
//! Δ rules of the lint), and a [`G::Jump`] that finds no label in scope
//! degrades to its payload expression. Every subtree therefore stays a
//! closed, total, `Int`-typed program, and the shrinker's
//! hoist-any-subtree move stays sound. Termination is structural: a
//! recursive group's own label is never put in scope of a generated
//! hole, so generated jumps only ever target *strictly outer* labels,
//! and the fixed loop skeletons count down.

use crate::rng::SplitMix64;
use fj_ast::{Alt, AltCon, Binder, Dsl, Expr, JoinDef, Name, PrimOp, Type};

/// A generator-level expression: always of type `Int`, always total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum G {
    /// An integer literal (kept small so products stay in range).
    Lit(i8),
    /// Reference to an in-scope variable (index is taken modulo the
    /// environment size; falls back to a literal when empty).
    Var(u8),
    /// `a + b`.
    Add(Box<G>, Box<G>),
    /// `a - b`.
    Sub(Box<G>, Box<G>),
    /// `a * b`.
    Mul(Box<G>, Box<G>),
    /// `if a < b then t else f`.
    IfLt(Box<G>, Box<G>, Box<G>, Box<G>),
    /// `let x = rhs in body` with `x` in scope for `body`.
    Let(Box<G>, Box<G>),
    /// `case (Just payload | Nothing) of { Nothing -> none; Just x -> some }`
    /// with the payload variable in scope for `some`.
    CaseMaybe {
        /// Whether the scrutinee is `Just payload` (else `Nothing`).
        just: bool,
        /// The `Just` payload (built even when unused, for uniform shape).
        payload: Box<G>,
        /// The `Nothing` branch.
        none: Box<G>,
        /// The `Just x` branch (sees `x`).
        some: Box<G>,
    },
    /// A terminating accumulator loop:
    /// `letrec go i acc = if i <= 0 then acc else go (i-1) step in go n init`
    /// where `step` sees `i` and `acc`.
    Loop {
        /// Iteration count (bounded so fuel never runs out).
        iters: u8,
        /// Initial accumulator.
        init: Box<G>,
        /// Step expression (sees the loop variables).
        step: Box<G>,
    },
    /// A non-recursive join point with a guaranteed-live jump:
    /// `join j (p:Int) = body in if arg < 0 then cont else jump j arg`.
    /// `body` sees `p` plus the *outer* labels (rule JBIND: a
    /// non-recursive RHS is checked under the enclosing Δ); `cont` sees
    /// the outer labels *and* `j`, so nested conditional jumps to `j`
    /// arise; `arg` is a jump argument and therefore sees no labels.
    Join {
        /// The join RHS (sees the parameter `p` and outer labels).
        body: Box<G>,
        /// The jump argument / discriminator (label-free).
        arg: Box<G>,
        /// The continuation (sees outer labels plus `j`).
        cont: Box<G>,
    },
    /// A terminating recursive join group, the contified mirror of
    /// [`G::Loop`]:
    /// `joinrec go (i:Int) (acc:Int) = if i <= 0 then done else jump go (i-1) step in jump go n init`.
    /// With `mutual` set, the group has two labels bouncing control
    /// between each other (`go` → `gob` → `go` …), each decrementing the
    /// counter. `done` is in tail position of a recursive RHS, so it
    /// sees the *outer* labels (Δ extends through `joinrec` RHSs) — but
    /// never the group's own labels, which keeps every generated
    /// program total.
    JoinLoop {
        /// Make the group mutually recursive (two labels).
        mutual: bool,
        /// Iteration count (bounded so fuel never runs out).
        iters: u8,
        /// Initial accumulator (a jump argument: label-free).
        init: Box<G>,
        /// Step expression (sees `i`/`acc`; a jump argument: label-free).
        step: Box<G>,
        /// Exit expression (sees `i`/`acc` and the outer labels).
        done: Box<G>,
    },
    /// A jump to the `i`-th enclosing label (modulo the label
    /// environment size) carrying the payload as its argument; degrades
    /// to the payload itself when no label is in scope.
    Jump(u8, Box<G>),
}

impl G {
    /// Number of grammar nodes — the shrinker's progress measure.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Direct `G`-typed children, in a fixed order.
    pub fn children(&self) -> Vec<&G> {
        match self {
            G::Lit(_) | G::Var(_) => vec![],
            G::Add(a, b) | G::Sub(a, b) | G::Mul(a, b) | G::Let(a, b) => vec![a, b],
            G::IfLt(a, b, t, f) => vec![a, b, t, f],
            G::CaseMaybe {
                payload,
                none,
                some,
                ..
            } => vec![payload, none, some],
            G::Loop { init, step, .. } => vec![init, step],
            G::Join { body, arg, cont } => vec![body, arg, cont],
            G::JoinLoop {
                init, step, done, ..
            } => vec![init, step, done],
            G::Jump(_, payload) => vec![payload],
        }
    }

    /// Rebuild this node with replacement children (same arity and order
    /// as [`G::children`]).
    pub fn with_children(&self, mut kids: Vec<G>) -> G {
        debug_assert_eq!(kids.len(), self.children().len());
        let mut next = || Box::new(kids.remove(0));
        match self {
            G::Lit(n) => G::Lit(*n),
            G::Var(i) => G::Var(*i),
            G::Add(..) => G::Add(next(), next()),
            G::Sub(..) => G::Sub(next(), next()),
            G::Mul(..) => G::Mul(next(), next()),
            G::Let(..) => G::Let(next(), next()),
            G::IfLt(..) => G::IfLt(next(), next(), next(), next()),
            G::CaseMaybe { just, .. } => G::CaseMaybe {
                just: *just,
                payload: next(),
                none: next(),
                some: next(),
            },
            G::Loop { iters, .. } => G::Loop {
                iters: *iters,
                init: next(),
                step: next(),
            },
            G::Join { .. } => G::Join {
                body: next(),
                arg: next(),
                cont: next(),
            },
            G::JoinLoop { mutual, iters, .. } => G::JoinLoop {
                mutual: *mutual,
                iters: *iters,
                init: next(),
                step: next(),
                done: next(),
            },
            G::Jump(i, _) => G::Jump(*i, next()),
        }
    }
}

/// Maximum recursion depth of [`gen`] (matches the proptest setup this
/// generator replaced).
pub const DEFAULT_DEPTH: u32 = 4;

/// Generate a random program description. `depth` bounds nesting; at
/// depth 0 only leaves are produced.
pub fn gen(rng: &mut SplitMix64, depth: u32) -> G {
    if depth == 0 {
        return gen_leaf(rng);
    }
    // Leaves stay likely at every depth so expected size remains small.
    match rng.below(14) {
        0..=2 => gen_leaf(rng),
        3 => G::Add(sub(rng, depth), sub(rng, depth)),
        4 => G::Sub(sub(rng, depth), sub(rng, depth)),
        5 => G::Mul(sub(rng, depth), sub(rng, depth)),
        6 => G::IfLt(
            sub(rng, depth),
            sub(rng, depth),
            sub(rng, depth),
            sub(rng, depth),
        ),
        7 => G::Let(sub(rng, depth), sub(rng, depth)),
        8 => G::CaseMaybe {
            just: rng.bool(),
            payload: sub(rng, depth),
            none: sub(rng, depth),
            some: sub(rng, depth),
        },
        9 => G::Loop {
            iters: (rng.below(12)) as u8,
            init: sub(rng, depth),
            step: sub(rng, depth),
        },
        10 => G::Join {
            body: sub(rng, depth),
            arg: sub(rng, depth),
            cont: sub(rng, depth),
        },
        11 => G::JoinLoop {
            mutual: rng.bool(),
            iters: (rng.below(12)) as u8,
            init: sub(rng, depth),
            step: sub(rng, depth),
            done: sub(rng, depth),
        },
        // Two arms: jumps should be common once a label is in scope —
        // and they degrade to their payload when none is.
        _ => G::Jump(rng.u8(), sub(rng, depth)),
    }
}

fn sub(rng: &mut SplitMix64, depth: u32) -> Box<G> {
    Box::new(gen(rng, depth - 1))
}

fn gen_leaf(rng: &mut SplitMix64) -> G {
    if rng.bool() {
        G::Lit(rng.i8())
    } else {
        G::Var(rng.u8())
    }
}

/// Interpret a generated description into a (closed, Int-typed) F_J term.
pub fn build(g: &G, d: &mut Dsl, env: &mut Vec<Name>) -> Expr {
    build_in(g, d, env, &mut Vec::new())
}

/// As [`build`], threading the in-scope join labels. `jenv` is passed
/// through to tail-position children only (the lint's Δ discipline) and
/// reset to empty everywhere else; every label in it has arity 1 and
/// result type `Int`.
fn build_in(g: &G, d: &mut Dsl, env: &mut Vec<Name>, jenv: &mut Vec<Name>) -> Expr {
    // Non-tail children (operands, scrutinees-in-disguise, arguments,
    // lambda bodies) must not see any labels.
    let mut no_labels = Vec::new();
    match g {
        G::Lit(n) => Expr::Lit(i64::from(*n)),
        G::Var(i) => {
            if env.is_empty() {
                Expr::Lit(i64::from(*i))
            } else {
                let ix = (*i as usize) % env.len();
                Expr::var(&env[ix])
            }
        }
        G::Add(a, b) => Expr::prim2(
            PrimOp::Add,
            build_in(a, d, env, &mut no_labels),
            build_in(b, d, env, &mut no_labels),
        ),
        G::Sub(a, b) => Expr::prim2(
            PrimOp::Sub,
            build_in(a, d, env, &mut no_labels),
            build_in(b, d, env, &mut no_labels),
        ),
        G::Mul(a, b) => Expr::prim2(
            PrimOp::Mul,
            build_in(a, d, env, &mut no_labels),
            build_in(b, d, env, &mut no_labels),
        ),
        G::IfLt(a, b, t, f) => Expr::ite(
            Expr::prim2(
                PrimOp::Lt,
                build_in(a, d, env, &mut no_labels),
                build_in(b, d, env, &mut no_labels),
            ),
            build_in(t, d, env, jenv),
            build_in(f, d, env, jenv),
        ),
        G::Let(rhs, body) => {
            let rhs_e = build_in(rhs, d, env, &mut no_labels);
            let b = d.binder("x", Type::Int);
            env.push(b.name.clone());
            let body_e = build_in(body, d, env, jenv);
            env.pop();
            Expr::let1(b, rhs_e, body_e)
        }
        G::CaseMaybe {
            just,
            payload,
            none,
            some,
        } => {
            let scrut = if *just {
                let p = build_in(payload, d, env, &mut no_labels);
                d.just(Type::Int, p)
            } else {
                d.nothing(Type::Int)
            };
            let none_e = build_in(none, d, env, jenv);
            let x = d.binder("m", Type::Int);
            env.push(x.name.clone());
            let some_e = build_in(some, d, env, jenv);
            env.pop();
            Expr::case(
                scrut,
                vec![
                    Alt::simple(AltCon::Con("Nothing".into()), none_e),
                    Alt {
                        con: AltCon::Con("Just".into()),
                        binders: vec![x],
                        rhs: some_e,
                    },
                ],
            )
        }
        G::Loop { iters, init, step } => {
            let init_e = build_in(init, d, env, &mut no_labels);
            let go = d.name("go");
            let i = d.binder("i", Type::Int);
            let acc = d.binder("acc", Type::Int);
            env.push(i.name.clone());
            env.push(acc.name.clone());
            let step_e = build_in(step, d, env, &mut no_labels);
            env.pop();
            env.pop();
            let body = Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&i.name), Expr::Lit(0)),
                Expr::var(&acc.name),
                Expr::apps(
                    Expr::var(&go),
                    [
                        Expr::prim2(PrimOp::Sub, Expr::var(&i.name), Expr::Lit(1)),
                        step_e,
                    ],
                ),
            );
            let go_ty = Type::funs([Type::Int, Type::Int], Type::Int);
            Expr::letrec(
                vec![(Binder::new(go.clone(), go_ty), Expr::lams([i, acc], body))],
                Expr::apps(Expr::var(&go), [Expr::Lit(i64::from(*iters)), init_e]),
            )
        }
        G::Join { body, arg, cont } => {
            let j = d.name("j");
            let p = d.binder("p", Type::Int);
            env.push(p.name.clone());
            let body_e = build_in(body, d, env, jenv);
            env.pop();
            // The argument is built twice (discriminator and payload);
            // both occurrences are non-tail.
            let arg_scrut = build_in(arg, d, env, &mut no_labels);
            let arg_jump = build_in(arg, d, env, &mut no_labels);
            jenv.push(j.clone());
            let cont_e = build_in(cont, d, env, jenv);
            jenv.pop();
            let def = JoinDef {
                name: j.clone(),
                ty_params: vec![],
                params: vec![p],
                body: body_e,
            };
            Expr::join1(
                def,
                Expr::ite(
                    Expr::prim2(PrimOp::Lt, arg_scrut, Expr::Lit(0)),
                    cont_e,
                    Expr::jump(&j, vec![], vec![arg_jump], Type::Int),
                ),
            )
        }
        G::JoinLoop {
            mutual,
            iters,
            init,
            step,
            done,
        } => {
            let init_e = build_in(init, d, env, &mut no_labels);
            let go = d.name("go");
            let i = d.binder("i", Type::Int);
            let acc = d.binder("acc", Type::Int);
            env.push(i.name.clone());
            env.push(acc.name.clone());
            let step_e = build_in(step, d, env, &mut no_labels);
            // `done` is a tail position of a recursive RHS: the outer
            // labels stay in Δ, but the group's own labels are withheld
            // so the loop provably terminates.
            let done_e = build_in(done, d, env, jenv);
            env.pop();
            env.pop();
            let dec = |n: &Name| Expr::prim2(PrimOp::Sub, Expr::var(n), Expr::Lit(1));
            let entry = Expr::jump(
                &go,
                vec![],
                vec![Expr::Lit(i64::from(*iters)), init_e],
                Type::Int,
            );
            if *mutual {
                let gob = d.name("gob");
                let i2 = d.binder("i", Type::Int);
                let acc2 = d.binder("acc", Type::Int);
                let go_body = Expr::ite(
                    Expr::prim2(PrimOp::Le, Expr::var(&i.name), Expr::Lit(0)),
                    done_e,
                    Expr::jump(&gob, vec![], vec![dec(&i.name), step_e], Type::Int),
                );
                let gob_body = Expr::ite(
                    Expr::prim2(PrimOp::Le, Expr::var(&i2.name), Expr::Lit(0)),
                    Expr::var(&acc2.name),
                    Expr::jump(
                        &go,
                        vec![],
                        vec![
                            dec(&i2.name),
                            Expr::prim2(PrimOp::Add, Expr::var(&acc2.name), Expr::Lit(1)),
                        ],
                        Type::Int,
                    ),
                );
                Expr::joinrec(
                    vec![
                        JoinDef {
                            name: go,
                            ty_params: vec![],
                            params: vec![i, acc],
                            body: go_body,
                        },
                        JoinDef {
                            name: gob,
                            ty_params: vec![],
                            params: vec![i2, acc2],
                            body: gob_body,
                        },
                    ],
                    entry,
                )
            } else {
                let go_body = Expr::ite(
                    Expr::prim2(PrimOp::Le, Expr::var(&i.name), Expr::Lit(0)),
                    done_e,
                    Expr::jump(&go, vec![], vec![dec(&i.name), step_e], Type::Int),
                );
                Expr::joinrec(
                    vec![JoinDef {
                        name: go,
                        ty_params: vec![],
                        params: vec![i, acc],
                        body: go_body,
                    }],
                    entry,
                )
            }
        }
        G::Jump(i, payload) => {
            let payload_e = build_in(payload, d, env, &mut no_labels);
            if jenv.is_empty() {
                payload_e
            } else {
                let ix = (*i as usize) % jenv.len();
                let j = jenv[ix].clone();
                Expr::jump(&j, vec![], vec![payload_e], Type::Int)
            }
        }
    }
}

/// Build a closed term (and the [`Dsl`] that owns its name supply and
/// data environment) from a description.
pub fn build_closed(g: &G) -> (Dsl, Expr) {
    let mut d = Dsl::new();
    let e = build(g, &mut d, &mut Vec::new());
    (d, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen(&mut SplitMix64::new(7), DEFAULT_DEPTH);
        let b = gen(&mut SplitMix64::new(7), DEFAULT_DEPTH);
        assert_eq!(a, b);
    }

    #[test]
    fn with_children_round_trips() {
        let g = gen(&mut SplitMix64::new(99), DEFAULT_DEPTH);
        let kids: Vec<G> = g.children().into_iter().cloned().collect();
        assert_eq!(g.with_children(kids), g);
    }

    #[test]
    fn generated_programs_are_well_typed() {
        let mut rng = SplitMix64::new(2024);
        for _ in 0..50 {
            let g = gen(&mut rng, DEFAULT_DEPTH);
            let (d, e) = build_closed(&g);
            assert!(
                fj_check::lint(&e, &d.data_env).is_ok(),
                "generator produced an ill-typed term:\n{e}"
            );
        }
    }

    /// The ROADMAP's generator blind spot, closed: a healthy fraction of
    /// generated programs must contain the paper's central construct.
    /// ≥20% is the acceptance bar; the observed rate is far higher.
    #[test]
    fn join_point_distribution() {
        let cases = 400u32;
        let mut rng = SplitMix64::new(0x0101_4E75);
        let mut with_joins = 0u32;
        let mut with_rec_group = 0u32;
        let mut with_mutual_group = 0u32;
        let mut with_generated_jump = 0u32;
        for _ in 0..cases {
            let g = gen(&mut rng, DEFAULT_DEPTH);
            let (_, e) = build_closed(&g);
            if e.has_join_or_jump() {
                with_joins += 1;
            }
            let mut rec = false;
            let mut mutual = false;
            e.walk(&mut |n| {
                if let Expr::Join(fj_ast::JoinBind::Rec(defs), _) = n {
                    rec = true;
                    mutual |= defs.len() > 1;
                }
            });
            with_rec_group += u32::from(rec);
            with_mutual_group += u32::from(mutual);
            with_generated_jump += u32::from(has_generated_jump(&g, false));
        }
        let pct = 100 * with_joins / cases;
        assert!(
            pct >= 20,
            "only {with_joins}/{cases} ({pct}%) of generated programs contain a join point"
        );
        assert!(with_rec_group > 0, "no recursive join groups generated");
        assert!(with_mutual_group > 0, "no mutual join groups generated");
        assert!(
            with_generated_jump > 0,
            "no grammar-level Jump ever landed in a label's scope"
        );
    }

    /// Does a `G::Jump` occur somewhere a label is actually in scope
    /// (i.e. it built a real `Expr::Jump`, not its degraded payload)?
    fn has_generated_jump(g: &G, in_scope: bool) -> bool {
        match g {
            G::Jump(_, payload) => in_scope || has_generated_jump(payload, false),
            G::Join { body, arg, cont } => {
                has_generated_jump(body, in_scope)
                    || has_generated_jump(arg, false)
                    || has_generated_jump(cont, true)
            }
            G::JoinLoop {
                init, step, done, ..
            } => {
                has_generated_jump(init, false)
                    || has_generated_jump(step, false)
                    || has_generated_jump(done, in_scope)
            }
            G::IfLt(a, b, t, f) => {
                has_generated_jump(a, false)
                    || has_generated_jump(b, false)
                    || has_generated_jump(t, in_scope)
                    || has_generated_jump(f, in_scope)
            }
            G::Let(rhs, body) => {
                has_generated_jump(rhs, false) || has_generated_jump(body, in_scope)
            }
            G::CaseMaybe {
                payload,
                none,
                some,
                ..
            } => {
                has_generated_jump(payload, false)
                    || has_generated_jump(none, in_scope)
                    || has_generated_jump(some, in_scope)
            }
            _ => g.children().iter().any(|c| has_generated_jump(c, false)),
        }
    }

    /// Generated jumps only ever target labels, never escape their
    /// scope, and the whole program still evaluates: the closure
    /// property holds for the join-extended grammar.
    #[test]
    fn join_programs_evaluate() {
        let mut rng = SplitMix64::new(0xDEAD_10CC);
        let mut evaluated = 0u32;
        for _ in 0..60 {
            let g = gen(&mut rng, DEFAULT_DEPTH);
            let (d, e) = build_closed(&g);
            if !e.has_join_or_jump() {
                continue;
            }
            fj_check::lint(&e, &d.data_env).expect("join program ill-typed");
            fj_eval::run_int(&e, fj_eval::EvalMode::CallByValue, 2_000_000)
                .expect("join program failed to evaluate");
            evaluated += 1;
        }
        assert!(evaluated >= 10, "too few join programs in the sample");
    }
}
