//! The well-typed program generator.
//!
//! Programs are described by a small grammar [`G`] in which **every**
//! subtree is itself a closed, total, `Int`-typed program: variable
//! references index the enclosing binder environment *modulo its length*
//! and degrade to literals when no binder is in scope. That closure
//! property is what makes shrinking trivial — replacing any node by any
//! of its subtrees (or a literal) yields another valid test case, so the
//! shrinker never needs to repair scoping.
//!
//! The grammar deliberately exercises the paper's machinery: `let`
//! bindings (inlining, floating), branching on a known `Maybe`
//! (case-of-known-constructor, case-of-case once contexts pile up), and
//! terminating accumulator loops (`letrec`, the contification target).

use crate::rng::SplitMix64;
use fj_ast::{Alt, AltCon, Binder, Dsl, Expr, Name, PrimOp, Type};

/// A generator-level expression: always of type `Int`, always total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum G {
    /// An integer literal (kept small so products stay in range).
    Lit(i8),
    /// Reference to an in-scope variable (index is taken modulo the
    /// environment size; falls back to a literal when empty).
    Var(u8),
    /// `a + b`.
    Add(Box<G>, Box<G>),
    /// `a - b`.
    Sub(Box<G>, Box<G>),
    /// `a * b`.
    Mul(Box<G>, Box<G>),
    /// `if a < b then t else f`.
    IfLt(Box<G>, Box<G>, Box<G>, Box<G>),
    /// `let x = rhs in body` with `x` in scope for `body`.
    Let(Box<G>, Box<G>),
    /// `case (Just payload | Nothing) of { Nothing -> none; Just x -> some }`
    /// with the payload variable in scope for `some`.
    CaseMaybe {
        /// Whether the scrutinee is `Just payload` (else `Nothing`).
        just: bool,
        /// The `Just` payload (built even when unused, for uniform shape).
        payload: Box<G>,
        /// The `Nothing` branch.
        none: Box<G>,
        /// The `Just x` branch (sees `x`).
        some: Box<G>,
    },
    /// A terminating accumulator loop:
    /// `letrec go i acc = if i <= 0 then acc else go (i-1) step in go n init`
    /// where `step` sees `i` and `acc`.
    Loop {
        /// Iteration count (bounded so fuel never runs out).
        iters: u8,
        /// Initial accumulator.
        init: Box<G>,
        /// Step expression (sees the loop variables).
        step: Box<G>,
    },
}

impl G {
    /// Number of grammar nodes — the shrinker's progress measure.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Direct `G`-typed children, in a fixed order.
    pub fn children(&self) -> Vec<&G> {
        match self {
            G::Lit(_) | G::Var(_) => vec![],
            G::Add(a, b) | G::Sub(a, b) | G::Mul(a, b) | G::Let(a, b) => vec![a, b],
            G::IfLt(a, b, t, f) => vec![a, b, t, f],
            G::CaseMaybe {
                payload,
                none,
                some,
                ..
            } => vec![payload, none, some],
            G::Loop { init, step, .. } => vec![init, step],
        }
    }

    /// Rebuild this node with replacement children (same arity and order
    /// as [`G::children`]).
    pub fn with_children(&self, mut kids: Vec<G>) -> G {
        debug_assert_eq!(kids.len(), self.children().len());
        let mut next = || Box::new(kids.remove(0));
        match self {
            G::Lit(n) => G::Lit(*n),
            G::Var(i) => G::Var(*i),
            G::Add(..) => G::Add(next(), next()),
            G::Sub(..) => G::Sub(next(), next()),
            G::Mul(..) => G::Mul(next(), next()),
            G::Let(..) => G::Let(next(), next()),
            G::IfLt(..) => G::IfLt(next(), next(), next(), next()),
            G::CaseMaybe { just, .. } => G::CaseMaybe {
                just: *just,
                payload: next(),
                none: next(),
                some: next(),
            },
            G::Loop { iters, .. } => G::Loop {
                iters: *iters,
                init: next(),
                step: next(),
            },
        }
    }
}

/// Maximum recursion depth of [`gen`] (matches the proptest setup this
/// generator replaced).
pub const DEFAULT_DEPTH: u32 = 4;

/// Generate a random program description. `depth` bounds nesting; at
/// depth 0 only leaves are produced.
pub fn gen(rng: &mut SplitMix64, depth: u32) -> G {
    if depth == 0 {
        return gen_leaf(rng);
    }
    // Leaves stay likely at every depth so expected size remains small.
    match rng.below(10) {
        0..=2 => gen_leaf(rng),
        3 => G::Add(sub(rng, depth), sub(rng, depth)),
        4 => G::Sub(sub(rng, depth), sub(rng, depth)),
        5 => G::Mul(sub(rng, depth), sub(rng, depth)),
        6 => G::IfLt(
            sub(rng, depth),
            sub(rng, depth),
            sub(rng, depth),
            sub(rng, depth),
        ),
        7 => G::Let(sub(rng, depth), sub(rng, depth)),
        8 => G::CaseMaybe {
            just: rng.bool(),
            payload: sub(rng, depth),
            none: sub(rng, depth),
            some: sub(rng, depth),
        },
        _ => G::Loop {
            iters: (rng.below(12)) as u8,
            init: sub(rng, depth),
            step: sub(rng, depth),
        },
    }
}

fn sub(rng: &mut SplitMix64, depth: u32) -> Box<G> {
    Box::new(gen(rng, depth - 1))
}

fn gen_leaf(rng: &mut SplitMix64) -> G {
    if rng.bool() {
        G::Lit(rng.i8())
    } else {
        G::Var(rng.u8())
    }
}

/// Interpret a generated description into a (closed, Int-typed) F_J term.
pub fn build(g: &G, d: &mut Dsl, env: &mut Vec<Name>) -> Expr {
    match g {
        G::Lit(n) => Expr::Lit(i64::from(*n)),
        G::Var(i) => {
            if env.is_empty() {
                Expr::Lit(i64::from(*i))
            } else {
                let ix = (*i as usize) % env.len();
                Expr::var(&env[ix])
            }
        }
        G::Add(a, b) => Expr::prim2(PrimOp::Add, build(a, d, env), build(b, d, env)),
        G::Sub(a, b) => Expr::prim2(PrimOp::Sub, build(a, d, env), build(b, d, env)),
        G::Mul(a, b) => Expr::prim2(PrimOp::Mul, build(a, d, env), build(b, d, env)),
        G::IfLt(a, b, t, f) => Expr::ite(
            Expr::prim2(PrimOp::Lt, build(a, d, env), build(b, d, env)),
            build(t, d, env),
            build(f, d, env),
        ),
        G::Let(rhs, body) => {
            let rhs_e = build(rhs, d, env);
            let b = d.binder("x", Type::Int);
            env.push(b.name.clone());
            let body_e = build(body, d, env);
            env.pop();
            Expr::let1(b, rhs_e, body_e)
        }
        G::CaseMaybe {
            just,
            payload,
            none,
            some,
        } => {
            let scrut = if *just {
                let p = build(payload, d, env);
                d.just(Type::Int, p)
            } else {
                d.nothing(Type::Int)
            };
            let none_e = build(none, d, env);
            let x = d.binder("m", Type::Int);
            env.push(x.name.clone());
            let some_e = build(some, d, env);
            env.pop();
            Expr::case(
                scrut,
                vec![
                    Alt::simple(AltCon::Con("Nothing".into()), none_e),
                    Alt {
                        con: AltCon::Con("Just".into()),
                        binders: vec![x],
                        rhs: some_e,
                    },
                ],
            )
        }
        G::Loop { iters, init, step } => {
            let init_e = build(init, d, env);
            let go = d.name("go");
            let i = d.binder("i", Type::Int);
            let acc = d.binder("acc", Type::Int);
            env.push(i.name.clone());
            env.push(acc.name.clone());
            let step_e = build(step, d, env);
            env.pop();
            env.pop();
            let body = Expr::ite(
                Expr::prim2(PrimOp::Le, Expr::var(&i.name), Expr::Lit(0)),
                Expr::var(&acc.name),
                Expr::apps(
                    Expr::var(&go),
                    [
                        Expr::prim2(PrimOp::Sub, Expr::var(&i.name), Expr::Lit(1)),
                        step_e,
                    ],
                ),
            );
            let go_ty = Type::funs([Type::Int, Type::Int], Type::Int);
            Expr::letrec(
                vec![(Binder::new(go.clone(), go_ty), Expr::lams([i, acc], body))],
                Expr::apps(Expr::var(&go), [Expr::Lit(i64::from(*iters)), init_e]),
            )
        }
    }
}

/// Build a closed term (and the [`Dsl`] that owns its name supply and
/// data environment) from a description.
pub fn build_closed(g: &G) -> (Dsl, Expr) {
    let mut d = Dsl::new();
    let e = build(g, &mut d, &mut Vec::new());
    (d, e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen(&mut SplitMix64::new(7), DEFAULT_DEPTH);
        let b = gen(&mut SplitMix64::new(7), DEFAULT_DEPTH);
        assert_eq!(a, b);
    }

    #[test]
    fn with_children_round_trips() {
        let g = gen(&mut SplitMix64::new(99), DEFAULT_DEPTH);
        let kids: Vec<G> = g.children().into_iter().cloned().collect();
        assert_eq!(g.with_children(kids), g);
    }

    #[test]
    fn generated_programs_are_well_typed() {
        let mut rng = SplitMix64::new(2024);
        for _ in 0..50 {
            let g = gen(&mut rng, DEFAULT_DEPTH);
            let (d, e) = build_closed(&g);
            assert!(
                fj_check::lint(&e, &d.data_env).is_ok(),
                "generator produced an ill-typed term:\n{e}"
            );
        }
    }
}
