//! # fj-testkit — offline property testing for System F_J
//!
//! A zero-dependency replacement for the `proptest`-based suite: the
//! container this repository builds in has **no network access**, so the
//! test infrastructure must live in-tree. Three pieces:
//!
//! * [`rng::SplitMix64`] — a deterministic 64-bit PRNG (no external
//!   crate, reproducible from a seed);
//! * [`gen`] — a generator of closed, total, well-typed `Int` programs
//!   over a grammar in which *every subtree is itself a valid program*,
//!   which makes the integrated greedy [`shrink`](shrink::shrink)er
//!   trivial and sound;
//! * [`oracle::differential`] — the per-pass differential oracle: run an
//!   [`OptConfig`](fj_core::OptConfig) pipeline one pass at a time,
//!   evaluating before/after **every** pass on the paper's abstract
//!   machine, asserting value preservation and lint-cleanliness, and
//!   reporting per-pass rewrite counters and allocation deltas.
//!
//! The driver is [`runner::check`]: generate ≥ 100 programs, check a
//! property on each, shrink the first failure to a minimal replayable
//! description.
//!
//! On top of those sits the **fuzz farm** ([`farm`], the `fj fuzz`
//! subcommand): a parallel, seeded sweep that cross-checks every
//! compile route pairwise (strict/resilient, cold/cached, machine/VM)
//! and shrinks any mismatch to a corpus repro whose `-- gen:` line
//! round-trips through [`codec`] — see DESIGN.md's "Fuzzing & corpus".
//!
//! ## Example
//!
//! ```
//! use fj_testkit::{gen::build_closed, runner};
//!
//! runner::check("generated programs lint", |g| {
//!     let (d, e) = build_closed(g);
//!     fj_check::lint(&e, &d.data_env)
//!         .map(|_| ())
//!         .map_err(|err| format!("ill-typed generator output: {err}\n{e}"))
//! });
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod codec;
pub mod farm;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod runner;
pub mod saboteur;
pub mod shrink;

pub use chaos::{honest_client, run_episode, ChaosConfig, Episode, EpisodeReport};
pub use farm::{case_seed, check_routes, run_farm, FarmConfig, FarmFailure, FarmReport};
pub use gen::{build_closed, gen, G};
pub use oracle::{differential, DiffReport, OracleError, PassDiff};
pub use rng::SplitMix64;
pub use runner::{check, check_with, Config};
pub use saboteur::{corrupt, saboteur, Sabotage, SaboteurHandle};
pub use shrink::shrink;
